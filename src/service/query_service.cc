#include "service/query_service.h"

#include <algorithm>
#include <mutex>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "service/warm_start.h"
#include "sql/executor.h"

namespace qagview::service {

namespace {

/// Folds a core-session trace into the request's stats (which may already
/// carry refresh/coalesce flags from EnsureFresh).
void MergeTrace(const core::Session::RequestTrace& trace, RequestStats* rs) {
  rs->cache_hit = trace.cache_hit;
  rs->coalesced = rs->coalesced || trace.coalesced;
  rs->built = trace.built;
}

DatasetCatalogOptions CatalogOptionsFor(const ServiceOptions& options) {
  DatasetCatalogOptions out;
  out.sample_capacity = options.sample_capacity;
  return out;
}

/// Session-identity tag of an approximate mode (exact mode is untagged so
/// exact keys — and their cached sessions — are unchanged).
const char* ModeTag(QueryMode mode) {
  switch (mode) {
    case QueryMode::kExactOnly: return "";
    case QueryMode::kApproxFirst: return "approx_first";
    case QueryMode::kApproxOnly: return "approx_only";
  }
  return "";
}

}  // namespace

QueryService::QueryService(ServiceOptions options)
    : options_(std::move(options)),
      datasets_(CatalogOptionsFor(options_)),
      registry_(std::make_shared<const Registry>()),
      predictor_(options_.prefetch_predictions),
      scheduler_(options_.background_threads) {}

Status QueryService::RegisterTable(const std::string& name,
                                   storage::Table table) {
  return datasets_.Register(name, std::move(table));
}

Status QueryService::RegisterCsvFile(const std::string& name,
                                     const std::string& path) {
  return datasets_.RegisterCsvFile(name, path);
}

Result<uint64_t> QueryService::AppendRows(
    const std::string& name,
    const std::vector<std::vector<storage::Value>>& rows) {
  Result<uint64_t> version = datasets_.AppendRows(name, rows);
  // The catalog moved: every queued speculative task tokened below the new
  // version was predicted against data that no longer exists. Drop it at
  // the queue instead of letting it build caches a refresh will retire.
  if (version.ok()) scheduler_.InvalidateBelow(*version);
  return version;
}

Result<AppendRowsResponse> QueryService::AppendRows(
    const AppendRowsRequest& request) {
  WallTimer timer;
  QAG_ASSIGN_OR_RETURN(uint64_t version,
                       AppendRows(request.dataset, request.rows));
  AppendRowsResponse out;
  out.version = version;
  out.stats.latency_ms = timer.ElapsedMillis();
  return out;
}

Result<uint64_t> QueryService::ReplaceTable(const std::string& name,
                                            storage::Table table) {
  Result<uint64_t> version = datasets_.ReplaceTable(name, std::move(table));
  if (version.ok()) scheduler_.InvalidateBelow(*version);
  return version;
}

std::vector<std::string> QueryService::dataset_names() const {
  return datasets_.names();
}

uint64_t QueryService::catalog_version() const {
  return datasets_.version();
}

Result<QueryInfo> QueryService::Query(const std::string& sql,
                                      const std::string& value_column) {
  return Query(sql, value_column, QueryOptions());
}

Result<QueryInfo> QueryService::Query(const std::string& sql,
                                      const std::string& value_column,
                                      const QueryOptions& options) {
  WallTimer timer;
  // Foreground gate: while any serving request is in flight, the scheduler
  // parks its prefetch lane, so speculation can never delay the answer the
  // user is actually waiting on. A null scheduler pointer (prefetch off)
  // makes the guard a no-op with zero atomics.
  BackgroundScheduler::ForegroundGuard fg(
      options_.prefetch ? &scheduler_ : nullptr);
  const std::string trimmed(StripWhitespace(sql));
  RequestStats rs;
  if (trimmed.empty()) {
    rs.latency_ms = timer.ElapsedMillis();
    Record(RequestKind::kQuery, rs);
    return Status::InvalidArgument("empty SQL text");
  }
  if (options.mode != QueryMode::kExactOnly &&
      !(options.confidence > 0.0 && options.confidence < 1.0)) {
    rs.latency_ms = timer.ElapsedMillis();
    Record(RequestKind::kQuery, rs);
    return Status::InvalidArgument(
        "QueryOptions::confidence must be in (0, 1)");
  }
  // Session identity: byte-identical SQL (modulo surrounding whitespace)
  // over the same value column; approximate modes additionally key on the
  // mode tag and confidence, so an exact-mode key (and its cached session)
  // is exactly what it was before modes existed. '\x1f' cannot occur in
  // any part.
  std::string key = trimmed + '\x1f' + ToLower(value_column);
  if (options.mode != QueryMode::kExactOnly) {
    key += '\x1f';
    key += ModeTag(options.mode);
    key += '\x1f';
    key += FormatDouble(options.confidence, 6);
  }
  // Reports the published answer set's shape and provenance (one wait-free
  // answers() load covers both).
  auto fill_info = [](const SessionEntry& entry, QueryHandle handle,
                      QueryInfo* info) {
    info->handle = handle;
    std::shared_ptr<const core::AnswerSet> answers = entry.session->answers();
    info->num_answers = answers->size();
    info->num_attrs = answers->num_attrs();
    const core::Approximation& approx = answers->approximation();
    info->is_exact = approx.is_exact;
    info->sample_fraction = approx.sample_fraction;
    info->max_bound = approx.max_bound;
    info->confidence = approx.confidence;
  };
  while (true) {
    {
      // Warm path: one atomic registry load, no locks.
      SessionEntry* entry = nullptr;
      QueryHandle handle = -1;
      std::shared_ptr<const Registry> registry = CurrentRegistry();
      auto it = registry->by_key.find(key);
      if (it != registry->by_key.end()) {
        handle = it->second;
        entry = registry->entries[static_cast<size_t>(handle)];
      }
      if (entry != nullptr) {
        // Bring a stale handle up to date before reporting its shape.
        Status fresh = EnsureFresh(entry, &rs);
        if (!fresh.ok()) {
          rs.latency_ms = timer.ElapsedMillis();
          Record(RequestKind::kQuery, rs);
          return fresh;
        }
        QueryInfo info;
        fill_info(*entry, handle, &info);
        if (entry->mode == QueryMode::kApproxFirst && !info.is_exact) {
          // Safety net: re-arm refinement if the set is still approximate
          // (e.g. a refresh republished an approximate generation, or an
          // earlier refinement errored). Deduplicated, never blocking.
          ScheduleRefinement(entry);
        }
        if (!rs.coalesced && !rs.refreshed) rs.cache_hit = true;
        StampApproximation(entry, &rs);
        rs.latency_ms = timer.ElapsedMillis();
        info.stats = rs;
        Record(RequestKind::kQuery, rs);
        return info;
      }
    }
    // Miss: lead the execution, or join an identical in-flight one.
    std::shared_ptr<FlightLatch> flight;
    bool leader = false;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      if (CurrentRegistry()->by_key.count(key) != 0) {
        continue;  // published since the check
      }
      auto fit = query_flights_.find(key);
      if (fit != query_flights_.end()) {
        flight = fit->second;
      } else {
        flight = std::make_shared<FlightLatch>();
        query_flights_.emplace(key, flight);
        leader = true;
      }
    }
    if (!leader) {
      rs.coalesced = true;
      Status status = flight->Wait();
      if (!status.ok()) {
        rs.latency_ms = timer.ElapsedMillis();
        Record(RequestKind::kQuery, rs);
        return status;
      }
      continue;  // the leader published the session; serve from cache
    }
    rs.built = true;
    // Execute outside the lock: SQL + answer-set materialization are the
    // expensive part, and the pinned catalog snapshot stays valid
    // regardless of concurrent dataset updates (snapshots are immutable).
    SessionEntry* published = nullptr;
    auto build = [&]() -> Result<QueryHandle> {
      CatalogSnapshot snapshot = datasets_.Snapshot();
      QAG_ASSIGN_OR_RETURN(
          BuiltAnswers built,
          BuildAnswers(trimmed, value_column, options.mode,
                       options.confidence, /*require_exact=*/false,
                       snapshot));
      QAG_ASSIGN_OR_RETURN(std::unique_ptr<core::Session> session,
                           core::Session::Create(std::move(built.answers)));
      session->set_num_threads(options_.num_threads);
      auto entry = std::make_unique<SessionEntry>();
      entry->session = std::move(session);
      entry->key = key;
      entry->sql = trimmed;
      entry->value_column = value_column;
      entry->mode = options.mode;
      entry->confidence = options.confidence;
      // The tables the execution actually resolved, at the versions the
      // snapshot pinned: the handle's staleness condition.
      for (const std::string& name : snapshot.sql.accessed()) {
        entry->deps.emplace(name, snapshot.versions.at(name));
      }
      entry->fresh_at.store(snapshot.catalog_version,
                            std::memory_order_release);
      // Publish: copy-on-write registry successor under the writer lock.
      std::unique_lock<std::shared_mutex> lock(mu_);
      std::shared_ptr<const Registry> cur = CurrentRegistry();
      auto next = std::make_shared<Registry>(*cur);
      QueryHandle handle = static_cast<QueryHandle>(next->entries.size());
      published = entry.get();
      next->entries.push_back(entry.get());
      next->by_key.emplace(key, handle);
      owned_.push_back(std::move(entry));
      PublishRegistry(std::move(next));
      return handle;
    };
    Result<QueryHandle> outcome = build();
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      query_flights_.erase(key);
    }
    flight->Finish(outcome.ok() ? Status::OK() : outcome.status());
    if (!outcome.ok()) {
      rs.latency_ms = timer.ElapsedMillis();
      Record(RequestKind::kQuery, rs);
      return outcome.status();
    }
    QueryInfo info;
    fill_info(*published, *outcome, &info);
    StampApproximation(published, &rs);
    if (published->mode == QueryMode::kApproxFirst && !info.is_exact) {
      // Two-phase publication, phase two: the exact build runs in the
      // background and republishes through the refresh machinery; this
      // (foreground) response returns the approximate set now.
      ScheduleRefinement(published);
    }
    // A freshly built session is the coldest it will ever be: try to
    // restore last session's guidance grid from disk, then speculate on
    // the exploration levels sessions historically open with. Both are
    // background tasks; neither delays this response.
    ScheduleWarmStartLoad(published);
    SchedulePrefetch(published, study::MoveKind::kQuery, /*level=*/0);
    rs.latency_ms = timer.ElapsedMillis();
    Record(RequestKind::kQuery, rs);
    info.stats = rs;
    return info;
  }
}

Result<QueryService::SessionEntry*> QueryService::Lookup(
    QueryHandle handle) const {
  // Lock-free: one atomic registry load; entries live for the service's
  // lifetime, so the raw pointer outlives the registry pin.
  std::shared_ptr<const Registry> registry = CurrentRegistry();
  if (handle < 0 ||
      handle >= static_cast<QueryHandle>(registry->entries.size())) {
    return Status::NotFound(
        StrCat("unknown query handle ", handle, "; obtain one from Query()"));
  }
  return registry->entries[static_cast<size_t>(handle)];
}

Result<QueryService::BuiltAnswers> QueryService::BuildAnswers(
    const std::string& sql, const std::string& value_column, QueryMode mode,
    double confidence, bool require_exact, const CatalogSnapshot& snapshot) {
  const bool want_approx = !require_exact && mode != QueryMode::kExactOnly;
  if (want_approx) {
    QAG_ASSIGN_OR_RETURN(sql::ApproxExecution exec,
                         sql::ExecuteSqlApproximate(sql, snapshot.sql));
    if (!exec.approximate) {
      // No useful sample (or no aggregate path): the execution was exact.
      QAG_ASSIGN_OR_RETURN(core::AnswerSet answers,
                           core::AnswerSet::FromTable(exec.table,
                                                      value_column));
      return BuiltAnswers{std::move(answers), false};
    }
    // The bounds contract: an approximate answer set is only published
    // when the ranking column has CLT standard errors (min/max and
    // expressions over aggregates do not) and at least one answer carries
    // a finite bound. Anything else falls through to an exact build.
    const std::vector<double>* se = nullptr;
    for (const auto& [name, vec] : exec.column_se) {
      if (EqualsIgnoreCase(name, value_column)) {
        se = &vec;
        break;
      }
    }
    if (se != nullptr) {
      Result<core::AnswerSet> answers = core::AnswerSet::FromTableApproximate(
          exec.table, value_column, *se, confidence, exec.sample_rows,
          exec.population_rows);
      if (answers.ok()) {
        return BuiltAnswers{std::move(answers).value(), true};
      }
    }
  }
  QAG_ASSIGN_OR_RETURN(storage::Table result,
                       sql::ExecuteSql(sql, snapshot.sql));
  QAG_ASSIGN_OR_RETURN(core::AnswerSet answers,
                       core::AnswerSet::FromTable(result, value_column));
  return BuiltAnswers{std::move(answers), false};
}

Status QueryService::Reconcile(SessionEntry* entry, bool require_exact,
                               RequestStats* rs, bool* led_rebuild) {
  // An exactness upgrade is owed when the caller demands exact and the
  // published set is not (wait-free check: one atomic view load).
  auto needs_upgrade = [&] {
    return require_exact && !entry->session->approximation().is_exact;
  };
  // Warm fast path: the catalog version still equals the version this
  // entry was last verified fresh at, so no dataset — of any name — has
  // changed since, and no upgrade is owed. Two relaxed-cost atomic loads
  // plus (for refinement callers only) one atomic view load, no locks;
  // this is the entire per-request price of versioning on the warm path.
  if (entry->fresh_at.load(std::memory_order_acquire) ==
          datasets_.version() &&
      !needs_upgrade()) {
    return Status::OK();
  }
  while (true) {
    // The catalog moved past the last verification (or an upgrade is
    // owed). Walk the per-table dependency versions to see whether one of
    // *this* query's inputs actually changed (an update to an unrelated
    // dataset lands here once, re-stamps fresh_at, and the fast path
    // resumes).
    const uint64_t observed_version = datasets_.version();
    bool stale = false;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      for (const auto& [name, version] : entry->deps) {
        if (datasets_.TableVersion(name) != version) {
          stale = true;
          break;
        }
      }
    }
    if (!stale && !needs_upgrade()) {
      // Verified fresh as of `observed_version`, which was read *before*
      // the walk: a mutation racing the walk at most leaves an older stamp
      // and the next request re-verifies.
      entry->fresh_at.store(observed_version, std::memory_order_release);
      return Status::OK();
    }
    // Stale or owing an upgrade: lead the rebuild, or coalesce onto the
    // flight already in progress. Refreshes and refinements share one
    // flight per entry, which is what serializes them: a refinement
    // joining a refresh waits it out and re-checks (restart); a refresh
    // joining a refinement the same (its freshness may already be covered
    // by the refinement's newer snapshot).
    std::shared_ptr<FlightLatch> flight;
    bool leader = false;
    bool upgrade = false;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      // Recheck under the exclusive lock: a rebuild that completed since
      // the fast check already updated the deps / published exact.
      const uint64_t recheck_version = datasets_.version();
      stale = false;
      for (const auto& [name, version] : entry->deps) {
        if (datasets_.TableVersion(name) != version) {
          stale = true;
          break;
        }
      }
      upgrade = needs_upgrade();
      if (!stale && !upgrade) {
        entry->fresh_at.store(recheck_version, std::memory_order_release);
        return Status::OK();
      }
      if (entry->refresh_flight != nullptr) {
        flight = entry->refresh_flight;
      } else {
        flight = std::make_shared<FlightLatch>();
        entry->refresh_flight = flight;
        leader = true;
      }
    }
    if (!leader) {
      if (rs != nullptr) rs->coalesced = true;
      Status status = flight->Wait();
      if (!status.ok()) return status;
      continue;  // re-check: the catalog may have moved again meanwhile
    }
    if (rs != nullptr && stale) rs->refreshed = true;
    // Rebuild against a fresh pinned snapshot — always the *newest* one,
    // so a refinement overtaken by dataset updates publishes the new data,
    // not a stale exact set — and hand the result to Session::Refresh,
    // which reuses every cache whose input fingerprint is provably
    // unchanged. Exactness of the build: a refinement (require_exact) and
    // an exact-only entry always build exact; an approximate-mode entry
    // refreshing in the foreground builds approximate again and re-arms
    // background refinement below, so foreground latency stays flat.
    const bool exact_build =
        require_exact || entry->mode == QueryMode::kExactOnly;
    core::Session::RefreshStats refresh_stats;
    auto rebuild = [&]() -> Status {
      CatalogSnapshot snapshot = datasets_.Snapshot();
      QAG_ASSIGN_OR_RETURN(
          BuiltAnswers built,
          BuildAnswers(entry->sql, entry->value_column, entry->mode,
                       entry->confidence, exact_build, snapshot));
      QAG_RETURN_IF_ERROR(
          entry->session->Refresh(std::move(built.answers), &refresh_stats));
      std::unique_lock<std::shared_mutex> lock(mu_);
      entry->deps.clear();
      for (const std::string& name : snapshot.sql.accessed()) {
        entry->deps.emplace(name, snapshot.versions.at(name));
      }
      entry->fresh_at.store(snapshot.catalog_version,
                            std::memory_order_release);
      return Status::OK();
    };
    Status outcome = rebuild();
    if (outcome.ok()) {
      // Count the rebuild *before* releasing the flight: a waiter
      // unblocked by Finish may read stats() immediately, and must see
      // the refresh/refinement it waited on already accounted.
      if (led_rebuild != nullptr) *led_rebuild = true;
      StatShard& shard = stat_shards_.Local();
      std::lock_guard<std::mutex> lock(shard.mu);
      if (stale) {
        ++shard.stats.refreshes;
        if (!refresh_stats.refreshed) ++shard.stats.refresh_full_reuses;
      }
      if (upgrade && exact_build) ++shard.stats.refinements;
    }
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      entry->refresh_flight.reset();
    }
    flight->Finish(outcome);
    if (outcome.ok() && !exact_build &&
        entry->mode == QueryMode::kApproxFirst &&
        !entry->session->approximation().is_exact) {
      // The foreground refresh republished an approximate set: schedule
      // the exact phase (outside every lock; deduplicated per entry).
      ScheduleRefinement(entry);
    }
    return outcome;
  }
}

void QueryService::ScheduleRefinement(SessionEntry* entry) {
  // One queued task per entry at a time: the exchange is the dedup, and
  // the task clears the flag *before* reconciling so a refresh landing
  // during its exact build can queue a follow-up instead of being lost.
  if (entry->refine_queued.exchange(true, std::memory_order_acq_rel)) return;
  // Token 0: refinement is *owed* work (the client was promised an exact
  // set), so a catalog mutation must not cancel it — Reconcile rebuilds
  // against the newest snapshot anyway, folding the mutation in.
  auto task = [this, entry] {
    WallTimer timer;
    entry->refine_queued.store(false, std::memory_order_release);
    RequestStats rs;
    bool led = false;
    Status status = Reconcile(entry, /*require_exact=*/true, &rs, &led);
    // A failed refinement is not fatal: the approximate set keeps serving
    // (with its bounds) and the next request re-arms refinement.
    if (status.ok() && !led) {
      StatShard& shard = stat_shards_.Local();
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.stats.refinements_superseded;
    }
    StampApproximation(entry, &rs);
    rs.latency_ms = timer.ElapsedMillis();
    Record(RequestKind::kRefine, rs);
  };
  scheduler_.Submit(BackgroundScheduler::Lane::kRefinement, /*token=*/0,
                    std::move(task));
}

void QueryService::StampApproximation(SessionEntry* entry, RequestStats* rs) {
  if (rs == nullptr) return;
  const core::Approximation approx = entry->session->approximation();
  rs->approximate = !approx.is_exact;
  rs->sample_fraction = approx.sample_fraction;
  rs->max_bound = approx.max_bound;
}

Status QueryService::Refine(QueryHandle handle, RequestStats* stats) {
  WallTimer timer;
  BackgroundScheduler::ForegroundGuard fg(
      options_.prefetch ? &scheduler_ : nullptr);
  RequestStats rs;
  auto run = [&]() -> Status {
    QAG_ASSIGN_OR_RETURN(SessionEntry* entry, Lookup(handle));
    QAG_RETURN_IF_ERROR(Reconcile(entry, /*require_exact=*/true, &rs));
    StampApproximation(entry, &rs);
    return Status::OK();
  };
  Status status = run();
  rs.latency_ms = timer.ElapsedMillis();
  Record(RequestKind::kRefine, rs);
  if (stats != nullptr) *stats = rs;
  return status;
}

Result<core::Solution> QueryService::Summarize(QueryHandle handle,
                                               const core::Params& params,
                                               RequestStats* stats) {
  WallTimer timer;
  BackgroundScheduler::ForegroundGuard fg(
      options_.prefetch ? &scheduler_ : nullptr);
  RequestStats rs;
  auto run = [&]() -> Result<core::Solution> {
    QAG_ASSIGN_OR_RETURN(SessionEntry* entry, Lookup(handle));
    QAG_RETURN_IF_ERROR(EnsureFresh(entry, &rs));
    core::Session::RequestTrace trace;
    Result<core::Solution> solution =
        entry->session->Summarize(params, core::HybridOptions(), &trace);
    MergeTrace(trace, &rs);
    StampApproximation(entry, &rs);
    if (solution.ok()) {
      CountPrefetchHit(entry, params.L, /*want_store=*/false, rs);
      SchedulePrefetch(entry, study::MoveKind::kSummarize, params.L);
    }
    return solution;
  };
  Result<core::Solution> solution = run();
  rs.latency_ms = timer.ElapsedMillis();
  Record(RequestKind::kSummarize, rs);
  if (stats != nullptr) *stats = rs;
  return solution;
}

Result<std::shared_ptr<const core::SolutionStore>> QueryService::Guidance(
    QueryHandle handle, int top_l, const core::PrecomputeOptions& options,
    RequestStats* stats) {
  WallTimer timer;
  BackgroundScheduler::ForegroundGuard fg(
      options_.prefetch ? &scheduler_ : nullptr);
  RequestStats rs;
  auto run = [&]() -> Result<std::shared_ptr<const core::SolutionStore>> {
    QAG_ASSIGN_OR_RETURN(SessionEntry* entry, Lookup(handle));
    QAG_RETURN_IF_ERROR(EnsureFresh(entry, &rs));
    core::Session::RequestTrace trace;
    Result<std::shared_ptr<const core::SolutionStore>> store =
        entry->session->Guidance(top_l, options, &trace);
    MergeTrace(trace, &rs);
    StampApproximation(entry, &rs);
    if (store.ok()) {
      CountPrefetchHit(entry, top_l, /*want_store=*/true, rs);
      SchedulePrefetch(entry, study::MoveKind::kGuidance, top_l);
      // A foreground-built exact grid is exactly what the next process
      // start wants warm: persist it (best-effort, off the hot path).
      if (rs.built && !rs.approximate) ScheduleSnapshotWrite(entry, top_l);
    }
    return store;
  };
  Result<std::shared_ptr<const core::SolutionStore>> store = run();
  rs.latency_ms = timer.ElapsedMillis();
  Record(RequestKind::kGuidance, rs);
  if (stats != nullptr) *stats = rs;
  return store;
}

Result<core::Solution> QueryService::Retrieve(QueryHandle handle, int top_l,
                                              int d, int k,
                                              RequestStats* stats) {
  WallTimer timer;
  BackgroundScheduler::ForegroundGuard fg(
      options_.prefetch ? &scheduler_ : nullptr);
  RequestStats rs;
  auto run = [&]() -> Result<core::Solution> {
    QAG_ASSIGN_OR_RETURN(SessionEntry* entry, Lookup(handle));
    QAG_RETURN_IF_ERROR(EnsureFresh(entry, &rs));
    core::Session::RequestTrace trace;
    Result<core::Solution> solution =
        entry->session->Retrieve(top_l, d, k, &trace);
    MergeTrace(trace, &rs);
    StampApproximation(entry, &rs);
    return solution;
  };
  Result<core::Solution> solution = run();
  rs.latency_ms = timer.ElapsedMillis();
  Record(RequestKind::kRetrieve, rs);
  if (stats != nullptr) *stats = rs;
  return solution;
}

Result<ExploreResult> QueryService::Explore(QueryHandle handle,
                                            const core::Params& params,
                                            int max_members) {
  WallTimer timer;
  BackgroundScheduler::ForegroundGuard fg(
      options_.prefetch ? &scheduler_ : nullptr);
  RequestStats rs;
  auto run = [&]() -> Result<ExploreResult> {
    QAG_ASSIGN_OR_RETURN(SessionEntry* entry, Lookup(handle));
    QAG_RETURN_IF_ERROR(EnsureFresh(entry, &rs));
    core::Session::RequestTrace trace;
    ExploreResult result;
    // Render against the exact universe that produced the solution — a
    // second UniverseFor(params.L) lookup could return a narrower
    // universe published concurrently, in which the solution's cluster
    // ids would be meaningless. The handle also pins the universe's
    // generation while the layers render, even if a refresh lands.
    std::shared_ptr<const core::ClusterUniverse> universe;
    QAG_ASSIGN_OR_RETURN(
        result.solution,
        entry->session->SummarizeWith(params, &universe,
                                      core::HybridOptions(), &trace));
    result.view = core::BuildTwoLayerView(*universe, result.solution);
    result.summary = core::RenderSummary(*universe, result.solution);
    result.expanded =
        core::RenderExpanded(*universe, result.solution, max_members);
    MergeTrace(trace, &rs);
    StampApproximation(entry, &rs);
    CountPrefetchHit(entry, params.L, /*want_store=*/false, rs);
    SchedulePrefetch(entry, study::MoveKind::kExplore, params.L);
    return result;
  };
  Result<ExploreResult> result = run();
  rs.latency_ms = timer.ElapsedMillis();
  Record(RequestKind::kExplore, rs);
  if (result.ok()) result->stats = rs;
  return result;
}

// --- Struct forms: thin wrappers over the signatures above, packaging the
// identical behaviour (including stats recording) into serializable
// responses with uniform provenance. ----------------------------------------

Result<QueryResponse> QueryService::Query(const QueryRequest& request) {
  QAG_ASSIGN_OR_RETURN(
      QueryInfo info,
      Query(request.sql, request.value_column, request.options));
  QueryResponse out;
  out.handle = info.handle;
  out.num_answers = info.num_answers;
  out.num_attrs = info.num_attrs;
  out.confidence = info.confidence;
  out.approx.is_exact = info.is_exact;
  out.approx.sample_fraction = info.sample_fraction;
  out.approx.max_bound = info.max_bound;
  out.stats = info.stats;
  return out;
}

Result<RefineResponse> QueryService::Refine(const RefineRequest& request) {
  RequestStats rs;
  QAG_RETURN_IF_ERROR(Refine(request.handle, &rs));
  RefineResponse out;
  out.approx = ApproxFromStats(rs);
  out.stats = rs;
  return out;
}

Result<SummarizeResponse> QueryService::Summarize(
    const SummarizeRequest& request) {
  RequestStats rs;
  QAG_ASSIGN_OR_RETURN(core::Solution solution,
                       Summarize(request.handle, request.params, &rs));
  SummarizeResponse out;
  out.solution = std::move(solution);
  out.approx = ApproxFromStats(rs);
  out.stats = rs;
  return out;
}

Result<GuidanceResponse> QueryService::Guidance(
    const GuidanceRequest& request) {
  RequestStats rs;
  QAG_ASSIGN_OR_RETURN(
      std::shared_ptr<const core::SolutionStore> store,
      Guidance(request.handle, request.top_l, request.options, &rs));
  GuidanceResponse out;
  out.store_l = store->l();
  out.k_max = store->k_max();
  out.d_values = store->d_values();
  for (int d : out.d_values) {
    QAG_ASSIGN_OR_RETURN(int min_k, store->MinK(d));
    out.min_ks.push_back(min_k);
  }
  out.num_intervals = store->num_intervals();
  out.naive_entries = store->naive_entries();
  out.approx = ApproxFromStats(rs);
  out.stats = rs;
  return out;
}

Result<RetrieveResponse> QueryService::Retrieve(
    const RetrieveRequest& request) {
  RequestStats rs;
  QAG_ASSIGN_OR_RETURN(
      core::Solution solution,
      Retrieve(request.handle, request.top_l, request.d, request.k, &rs));
  RetrieveResponse out;
  out.solution = std::move(solution);
  out.approx = ApproxFromStats(rs);
  out.stats = rs;
  return out;
}

Result<ExploreResponse> QueryService::Explore(const ExploreRequest& request) {
  QAG_ASSIGN_OR_RETURN(
      ExploreResult result,
      Explore(request.handle, request.params, request.max_members));
  ExploreResponse out;
  out.solution = std::move(result.solution);
  out.view = std::move(result.view);
  out.summary = std::move(result.summary);
  out.expanded = std::move(result.expanded);
  out.approx = ApproxFromStats(result.stats);
  out.stats = result.stats;
  return out;
}

// --- Typed per-handle accessors (the narrow replacements for the removed
// session() escape hatch: every read goes through freshness + the RCU view,
// never a raw Session pointer). ----------------------------------------------

Result<std::shared_ptr<const core::AnswerSet>> QueryService::Answers(
    QueryHandle handle) {
  QAG_ASSIGN_OR_RETURN(SessionEntry* entry, Lookup(handle));
  QAG_RETURN_IF_ERROR(EnsureFresh(entry, /*rs=*/nullptr));
  return entry->session->answers();
}

Status QueryService::SaveGuidance(QueryHandle handle, int top_l,
                                  const std::string& path) {
  QAG_ASSIGN_OR_RETURN(SessionEntry* entry, Lookup(handle));
  QAG_RETURN_IF_ERROR(EnsureFresh(entry, /*rs=*/nullptr));
  return entry->session->SaveGuidance(top_l, path);
}

Result<core::Session::CacheStats> QueryService::SessionCacheStats(
    QueryHandle handle) const {
  QAG_ASSIGN_OR_RETURN(SessionEntry* entry, Lookup(handle));
  return entry->session->cache_stats();
}

// --- Background work: speculation and persistence. --------------------------

void QueryService::SchedulePrefetch(SessionEntry* entry, study::MoveKind kind,
                                    int level) {
  if (!options_.prefetch) return;
  // While the published set is approximate the background cycles belong to
  // the exact refinement; anything speculated now would be retired by the
  // exact republish anyway.
  if (!entry->session->approximation().is_exact) return;
  const int num_answers =
      static_cast<int>(entry->session->answers()->size());
  const std::vector<int> targets =
      kind == study::MoveKind::kQuery
          ? predictor_.InitialLevels(num_answers)
          : predictor_.NextLevels(kind, level, num_answers);
  // Guidance historically leads to more guidance (drill-downs over the
  // grid), so speculate whole stores there; after Summarize/Explore/Query
  // the cheaper universe covers the likely next move.
  const bool want_store = kind == study::MoveKind::kGuidance;
  const uint64_t token = datasets_.version();
  for (int target : targets) {
    Bump(&ServiceStats::prefetch_issued);
    auto task = [this, entry, target, want_store] {
      // Token validity at dequeue proves no catalog mutation landed since
      // submit, so the entry is as fresh as when the predictor fired: no
      // EnsureFresh, no locks on the foreground path.
      core::Session::RequestTrace trace;
      bool ok;
      if (want_store) {
        ok = entry->session
                 ->Guidance(target, core::PrecomputeOptions(), &trace)
                 .ok();
      } else {
        ok = entry->session->UniverseFor(target, &trace).ok();
      }
      // Only a build this task *led* is claimable as a prefetch win; a
      // cache hit means someone else (foreground or earlier prefetch)
      // already paid for the structure.
      if (!ok || !trace.built) return;
      {
        std::lock_guard<std::mutex> lock(entry->prefetch_mu);
        entry->prefetched.emplace_back(target, want_store);
      }
      if (want_store) ScheduleSnapshotWrite(entry, target);
    };
    scheduler_.Submit(BackgroundScheduler::Lane::kPrefetch, token,
                      std::move(task));
  }
}

void QueryService::CountPrefetchHit(SessionEntry* entry, int level,
                                    bool want_store, const RequestStats& rs) {
  // Only a warm serve can have been a prefetch win, and only if a ledger
  // entry covers the request: a universe or store for L' >= level serves
  // level (wider structures subsume narrower requests), and a store
  // satisfies a universe request but not vice versa.
  if (!options_.prefetch || !rs.cache_hit) return;
  {
    std::lock_guard<std::mutex> lock(entry->prefetch_mu);
    auto it = std::find_if(entry->prefetched.begin(), entry->prefetched.end(),
                           [&](const std::pair<int, bool>& p) {
                             return p.first >= level &&
                                    (p.second || !want_store);
                           });
    if (it == entry->prefetched.end()) return;
    // Claim once: a single speculative build must not be counted as a win
    // by every later request it keeps serving.
    entry->prefetched.erase(it);
  }
  Bump(&ServiceStats::prefetch_hits);
}

void QueryService::ScheduleWarmStartLoad(SessionEntry* entry) {
  if (options_.snapshot_dir.empty()) return;
  const std::string path =
      options_.snapshot_dir + "/" + WarmStartFileName(entry->key);
  // Foreground-build lane: a warm start substitutes for the grid build the
  // first Guidance would otherwise pay, so it must not queue behind
  // speculation. Tokened with the current version: a catalog mutation
  // in between makes the snapshot's fingerprints unverifiable against the
  // (about to be refreshed) answer set, so the load is dropped.
  auto task = [this, entry, path] {
    Result<WarmStartSnapshot> snap = ReadWarmStartSnapshot(path);
    if (!snap.ok()) return;  // absent, truncated, or damaged: stay cold
    core::Session::GuidanceSnapshot gs;
    gs.store_l = snap->store_l;
    gs.content_fingerprint = snap->content_fingerprint;
    gs.domain_fingerprint = snap->domain_fingerprint;
    gs.num_answers = snap->num_answers;
    gs.num_attrs = snap->num_attrs;
    gs.payload = std::move(snap->payload);
    // A snapshot from a different query, catalog state, or a damaged
    // payload fails validation inside the session and leaves it cold —
    // a wrong answer is never possible, only a missed warm start.
    if (entry->session->LoadGuidanceSnapshot(gs).ok()) {
      Bump(&ServiceStats::warm_start_loads);
    }
  };
  scheduler_.Submit(BackgroundScheduler::Lane::kForegroundBuild,
                    datasets_.version(), std::move(task));
}

void QueryService::ScheduleSnapshotWrite(SessionEntry* entry, int top_l) {
  if (options_.snapshot_dir.empty()) return;
  const std::string path =
      options_.snapshot_dir + "/" + WarmStartFileName(entry->key);
  auto task = [this, entry, top_l, path] {
    // Never persist estimates: an approximate grid would warm-start a
    // future exact session with sampled values.
    if (!entry->session->approximation().is_exact) return;
    Result<core::Session::GuidanceSnapshot> gs =
        entry->session->SnapshotGuidance(top_l);
    if (!gs.ok()) return;
    WarmStartSnapshot snap;
    snap.catalog_version = entry->fresh_at.load(std::memory_order_acquire);
    snap.content_fingerprint = gs->content_fingerprint;
    snap.domain_fingerprint = gs->domain_fingerprint;
    snap.num_answers = gs->num_answers;
    snap.num_attrs = gs->num_attrs;
    snap.store_l = gs->store_l;
    snap.payload = std::move(gs->payload);
    // Best-effort: a failed write (full disk, unwritable dir) costs the
    // next process a cold build, nothing else.
    Status written = WriteWarmStartSnapshot(path, snap);
    (void)written;
  };
  scheduler_.Submit(BackgroundScheduler::Lane::kPrefetch, datasets_.version(),
                    std::move(task));
}

void QueryService::Bump(int64_t ServiceStats::*field) {
  StatShard& shard = stat_shards_.Local();
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.stats.*field += 1;
}

void QueryService::DrainBackgroundWork() { scheduler_.Drain(); }

BackgroundScheduler::Counters QueryService::scheduler_counters() const {
  return scheduler_.counters();
}

void QueryService::Record(RequestKind kind, const RequestStats& stats) {
  // The calling thread's shard: the lock is effectively uncontended (only
  // this thread and the rare aggregating reader take it), so recording is
  // a core-local write, not a global serialization point.
  StatShard& shard = stat_shards_.Local();
  std::lock_guard<std::mutex> lock(shard.mu);
  Stats& s = shard.stats;
  switch (kind) {
    case RequestKind::kQuery:
      ++s.queries;
      if (stats.cache_hit) ++s.query_cache_hits;
      if (stats.coalesced) ++s.query_coalesced;
      if (stats.approximate) ++s.approx_queries;
      break;
    case RequestKind::kRefine:
      ++s.refine_requests;
      break;
    case RequestKind::kSummarize:
      ++s.summarize_requests;
      break;
    case RequestKind::kGuidance:
      ++s.guidance_requests;
      break;
    case RequestKind::kRetrieve:
      ++s.retrieve_requests;
      break;
    case RequestKind::kExplore:
      ++s.explore_requests;
      break;
  }
  if (kind != RequestKind::kQuery && kind != RequestKind::kRefine) {
    if (stats.cache_hit) ++s.cache_hits;
    if (stats.coalesced) ++s.coalesced_waits;
    if (stats.built) ++s.builds;
    if (stats.approximate) ++s.approx_served;
  }
  s.total_latency_ms += stats.latency_ms;
  s.max_latency_ms = std::max(s.max_latency_ms, stats.latency_ms);
}

QueryService::Stats QueryService::stats() const {
  // Aggregate-on-read over the per-thread shards (exact once the recorded
  // requests happen-before this read, e.g. after thread join).
  Stats out;
  stat_shards_.ForEach([&out](const StatShard& shard) {
    std::lock_guard<std::mutex> lock(shard.mu);
    const Stats& s = shard.stats;
    out.queries += s.queries;
    out.query_cache_hits += s.query_cache_hits;
    out.query_coalesced += s.query_coalesced;
    out.summarize_requests += s.summarize_requests;
    out.guidance_requests += s.guidance_requests;
    out.retrieve_requests += s.retrieve_requests;
    out.explore_requests += s.explore_requests;
    out.cache_hits += s.cache_hits;
    out.coalesced_waits += s.coalesced_waits;
    out.builds += s.builds;
    out.refreshes += s.refreshes;
    out.refresh_full_reuses += s.refresh_full_reuses;
    out.approx_queries += s.approx_queries;
    out.approx_served += s.approx_served;
    out.refine_requests += s.refine_requests;
    out.refinements += s.refinements;
    out.refinements_superseded += s.refinements_superseded;
    out.prefetch_issued += s.prefetch_issued;
    out.prefetch_hits += s.prefetch_hits;
    out.warm_start_loads += s.warm_start_loads;
    out.total_latency_ms += s.total_latency_ms;
    out.max_latency_ms = std::max(out.max_latency_ms, s.max_latency_ms);
  });
  out.datasets = datasets_.size();
  std::shared_ptr<const Registry> registry = CurrentRegistry();
  out.sessions = static_cast<int64_t>(registry->entries.size());
  // Generation-lifetime counters are summed at read time from each
  // session, via the pinned registry snapshot (no service lock).
  for (const SessionEntry* entry : registry->entries) {
    core::Session::CacheStats cache = entry->session->cache_stats();
    out.graveyard_size += cache.graveyard_size;
    out.live_generations += cache.live_generations;
    out.generations_evicted += cache.generations_evicted;
  }
  return out;
}

}  // namespace qagview::service
