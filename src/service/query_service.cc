#include "service/query_service.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"
#include "sql/executor.h"

namespace qagview::service {

namespace {

/// Folds a core-session trace into the request's stats (which may already
/// carry refresh/coalesce flags from EnsureFresh).
void MergeTrace(const core::Session::RequestTrace& trace, RequestStats* rs) {
  rs->cache_hit = trace.cache_hit;
  rs->coalesced = rs->coalesced || trace.coalesced;
  rs->built = trace.built;
}

}  // namespace

QueryService::QueryService(ServiceOptions options)
    : options_(std::move(options)) {}

Status QueryService::RegisterTable(const std::string& name,
                                   storage::Table table) {
  return datasets_.Register(name, std::move(table));
}

Status QueryService::RegisterCsvFile(const std::string& name,
                                     const std::string& path) {
  return datasets_.RegisterCsvFile(name, path);
}

Result<uint64_t> QueryService::AppendRows(
    const std::string& name,
    const std::vector<std::vector<storage::Value>>& rows) {
  return datasets_.AppendRows(name, rows);
}

Result<uint64_t> QueryService::ReplaceTable(const std::string& name,
                                            storage::Table table) {
  return datasets_.ReplaceTable(name, std::move(table));
}

std::vector<std::string> QueryService::dataset_names() const {
  return datasets_.names();
}

uint64_t QueryService::catalog_version() const {
  return datasets_.version();
}

Result<QueryInfo> QueryService::Query(const std::string& sql,
                                      const std::string& value_column) {
  WallTimer timer;
  const std::string trimmed(StripWhitespace(sql));
  RequestStats rs;
  if (trimmed.empty()) {
    rs.latency_ms = timer.ElapsedMillis();
    Record(RequestKind::kQuery, rs);
    return Status::InvalidArgument("empty SQL text");
  }
  // Session identity: byte-identical SQL (modulo surrounding whitespace)
  // over the same value column. '\x1f' cannot occur in either part.
  const std::string key = trimmed + '\x1f' + ToLower(value_column);
  while (true) {
    {
      SessionEntry* entry = nullptr;
      QueryHandle handle = -1;
      {
        std::shared_lock<std::shared_mutex> lock(mu_);
        auto it = by_key_.find(key);
        if (it != by_key_.end()) {
          handle = it->second;
          entry = entries_[static_cast<size_t>(handle)].get();
        }
      }
      if (entry != nullptr) {
        // Bring a stale handle up to date before reporting its shape.
        Status fresh = EnsureFresh(entry, &rs);
        if (!fresh.ok()) {
          rs.latency_ms = timer.ElapsedMillis();
          Record(RequestKind::kQuery, rs);
          return fresh;
        }
        QueryInfo info;
        info.handle = handle;
        std::shared_ptr<const core::AnswerSet> answers =
            entry->session->answers();
        info.num_answers = answers->size();
        info.num_attrs = answers->num_attrs();
        if (!rs.coalesced && !rs.refreshed) rs.cache_hit = true;
        rs.latency_ms = timer.ElapsedMillis();
        info.stats = rs;
        Record(RequestKind::kQuery, rs);
        return info;
      }
    }
    // Miss: lead the execution, or join an identical in-flight one.
    std::shared_ptr<FlightLatch> flight;
    bool leader = false;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      if (by_key_.count(key) != 0) continue;  // published since the check
      auto fit = query_flights_.find(key);
      if (fit != query_flights_.end()) {
        flight = fit->second;
      } else {
        flight = std::make_shared<FlightLatch>();
        query_flights_.emplace(key, flight);
        leader = true;
      }
    }
    if (!leader) {
      rs.coalesced = true;
      Status status = flight->Wait();
      if (!status.ok()) {
        rs.latency_ms = timer.ElapsedMillis();
        Record(RequestKind::kQuery, rs);
        return status;
      }
      continue;  // the leader published the session; serve from cache
    }
    rs.built = true;
    // Execute outside the lock: SQL + answer-set materialization are the
    // expensive part, and the pinned catalog snapshot stays valid
    // regardless of concurrent dataset updates (snapshots are immutable).
    auto build = [&]() -> Result<QueryHandle> {
      CatalogSnapshot snapshot = datasets_.Snapshot();
      QAG_ASSIGN_OR_RETURN(storage::Table result,
                           sql::ExecuteSql(trimmed, snapshot.sql));
      QAG_ASSIGN_OR_RETURN(std::unique_ptr<core::Session> session,
                           core::Session::FromTable(result, value_column));
      session->set_num_threads(options_.num_threads);
      auto entry = std::make_unique<SessionEntry>();
      entry->session = std::move(session);
      entry->sql = trimmed;
      entry->value_column = value_column;
      // The tables the execution actually resolved, at the versions the
      // snapshot pinned: the handle's staleness condition.
      for (const std::string& name : snapshot.sql.accessed()) {
        entry->deps.emplace(name, snapshot.versions.at(name));
      }
      std::unique_lock<std::shared_mutex> lock(mu_);
      QueryHandle handle = static_cast<QueryHandle>(entries_.size());
      entries_.push_back(std::move(entry));
      by_key_.emplace(key, handle);
      return handle;
    };
    Result<QueryHandle> outcome = build();
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      query_flights_.erase(key);
    }
    flight->Finish(outcome.ok() ? Status::OK() : outcome.status());
    rs.latency_ms = timer.ElapsedMillis();
    Record(RequestKind::kQuery, rs);
    if (!outcome.ok()) return outcome.status();
    QueryInfo info;
    info.handle = *outcome;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      const SessionEntry& entry = *entries_[static_cast<size_t>(*outcome)];
      std::shared_ptr<const core::AnswerSet> answers =
          entry.session->answers();
      info.num_answers = answers->size();
      info.num_attrs = answers->num_attrs();
    }
    info.stats = rs;
    return info;
  }
}

Result<QueryService::SessionEntry*> QueryService::Lookup(
    QueryHandle handle) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (handle < 0 || handle >= static_cast<QueryHandle>(entries_.size())) {
    return Status::NotFound(
        StrCat("unknown query handle ", handle, "; obtain one from Query()"));
  }
  SessionEntry* entry = entries_[static_cast<size_t>(handle)].get();
  return entry;
}

Status QueryService::EnsureFresh(SessionEntry* entry, RequestStats* rs) {
  while (true) {
    // Fast path: every dependency still at the version the answer set was
    // executed against. This is the per-request cost of versioning — a
    // shared-lock dep copy plus one catalog version lookup per table.
    bool stale = false;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      for (const auto& [name, version] : entry->deps) {
        if (datasets_.TableVersion(name) != version) {
          stale = true;
          break;
        }
      }
    }
    if (!stale) return Status::OK();
    // Stale: lead the refresh, or coalesce onto the one in flight.
    std::shared_ptr<FlightLatch> flight;
    bool leader = false;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      // Recheck under the exclusive lock: a refresh that completed since
      // the fast check already updated the deps.
      stale = false;
      for (const auto& [name, version] : entry->deps) {
        if (datasets_.TableVersion(name) != version) {
          stale = true;
          break;
        }
      }
      if (!stale) return Status::OK();
      if (entry->refresh_flight != nullptr) {
        flight = entry->refresh_flight;
      } else {
        flight = std::make_shared<FlightLatch>();
        entry->refresh_flight = flight;
        leader = true;
      }
    }
    if (!leader) {
      if (rs != nullptr) rs->coalesced = true;
      Status status = flight->Wait();
      if (!status.ok()) return status;
      continue;  // re-check: the catalog may have moved again meanwhile
    }
    if (rs != nullptr) rs->refreshed = true;
    // Re-execute the SQL against a fresh pinned snapshot and hand the new
    // answer set to the session, which reuses every cache whose input
    // fingerprint is provably unchanged. All outside the lock.
    core::Session::RefreshStats refresh_stats;
    auto refresh = [&]() -> Status {
      CatalogSnapshot snapshot = datasets_.Snapshot();
      QAG_ASSIGN_OR_RETURN(storage::Table result,
                           sql::ExecuteSql(entry->sql, snapshot.sql));
      QAG_ASSIGN_OR_RETURN(
          core::AnswerSet answers,
          core::AnswerSet::FromTable(result, entry->value_column));
      QAG_RETURN_IF_ERROR(
          entry->session->Refresh(std::move(answers), &refresh_stats));
      std::unique_lock<std::shared_mutex> lock(mu_);
      entry->deps.clear();
      for (const std::string& name : snapshot.sql.accessed()) {
        entry->deps.emplace(name, snapshot.versions.at(name));
      }
      return Status::OK();
    };
    Status outcome = refresh();
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      entry->refresh_flight.reset();
    }
    flight->Finish(outcome);
    if (outcome.ok()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.refreshes;
      if (!refresh_stats.refreshed) ++stats_.refresh_full_reuses;
    }
    return outcome;
  }
}

Result<core::Solution> QueryService::Summarize(QueryHandle handle,
                                               const core::Params& params,
                                               RequestStats* stats) {
  WallTimer timer;
  RequestStats rs;
  auto run = [&]() -> Result<core::Solution> {
    QAG_ASSIGN_OR_RETURN(SessionEntry* entry, Lookup(handle));
    QAG_RETURN_IF_ERROR(EnsureFresh(entry, &rs));
    core::Session::RequestTrace trace;
    Result<core::Solution> solution =
        entry->session->Summarize(params, core::HybridOptions(), &trace);
    MergeTrace(trace, &rs);
    return solution;
  };
  Result<core::Solution> solution = run();
  rs.latency_ms = timer.ElapsedMillis();
  Record(RequestKind::kSummarize, rs);
  if (stats != nullptr) *stats = rs;
  return solution;
}

Result<std::shared_ptr<const core::SolutionStore>> QueryService::Guidance(
    QueryHandle handle, int top_l, const core::PrecomputeOptions& options,
    RequestStats* stats) {
  WallTimer timer;
  RequestStats rs;
  auto run = [&]() -> Result<std::shared_ptr<const core::SolutionStore>> {
    QAG_ASSIGN_OR_RETURN(SessionEntry* entry, Lookup(handle));
    QAG_RETURN_IF_ERROR(EnsureFresh(entry, &rs));
    core::Session::RequestTrace trace;
    Result<std::shared_ptr<const core::SolutionStore>> store =
        entry->session->Guidance(top_l, options, &trace);
    MergeTrace(trace, &rs);
    return store;
  };
  Result<std::shared_ptr<const core::SolutionStore>> store = run();
  rs.latency_ms = timer.ElapsedMillis();
  Record(RequestKind::kGuidance, rs);
  if (stats != nullptr) *stats = rs;
  return store;
}

Result<core::Solution> QueryService::Retrieve(QueryHandle handle, int top_l,
                                              int d, int k,
                                              RequestStats* stats) {
  WallTimer timer;
  RequestStats rs;
  auto run = [&]() -> Result<core::Solution> {
    QAG_ASSIGN_OR_RETURN(SessionEntry* entry, Lookup(handle));
    QAG_RETURN_IF_ERROR(EnsureFresh(entry, &rs));
    core::Session::RequestTrace trace;
    Result<core::Solution> solution =
        entry->session->Retrieve(top_l, d, k, &trace);
    MergeTrace(trace, &rs);
    return solution;
  };
  Result<core::Solution> solution = run();
  rs.latency_ms = timer.ElapsedMillis();
  Record(RequestKind::kRetrieve, rs);
  if (stats != nullptr) *stats = rs;
  return solution;
}

Result<ExploreResult> QueryService::Explore(QueryHandle handle,
                                            const core::Params& params,
                                            int max_members) {
  WallTimer timer;
  RequestStats rs;
  auto run = [&]() -> Result<ExploreResult> {
    QAG_ASSIGN_OR_RETURN(SessionEntry* entry, Lookup(handle));
    QAG_RETURN_IF_ERROR(EnsureFresh(entry, &rs));
    core::Session::RequestTrace trace;
    ExploreResult result;
    // Render against the exact universe that produced the solution — a
    // second UniverseFor(params.L) lookup could return a narrower
    // universe published concurrently, in which the solution's cluster
    // ids would be meaningless. The handle also pins the universe's
    // generation while the layers render, even if a refresh lands.
    std::shared_ptr<const core::ClusterUniverse> universe;
    QAG_ASSIGN_OR_RETURN(
        result.solution,
        entry->session->SummarizeWith(params, &universe,
                                      core::HybridOptions(), &trace));
    result.view = core::BuildTwoLayerView(*universe, result.solution);
    result.summary = core::RenderSummary(*universe, result.solution);
    result.expanded =
        core::RenderExpanded(*universe, result.solution, max_members);
    MergeTrace(trace, &rs);
    return result;
  };
  Result<ExploreResult> result = run();
  rs.latency_ms = timer.ElapsedMillis();
  Record(RequestKind::kExplore, rs);
  if (result.ok()) result->stats = rs;
  return result;
}

Result<core::Session*> QueryService::session(QueryHandle handle) {
  QAG_ASSIGN_OR_RETURN(SessionEntry* entry, Lookup(handle));
  QAG_RETURN_IF_ERROR(EnsureFresh(entry, /*rs=*/nullptr));
  return entry->session.get();
}

void QueryService::Record(RequestKind kind, const RequestStats& stats) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  switch (kind) {
    case RequestKind::kQuery:
      ++stats_.queries;
      if (stats.cache_hit) ++stats_.query_cache_hits;
      if (stats.coalesced) ++stats_.query_coalesced;
      break;
    case RequestKind::kSummarize:
      ++stats_.summarize_requests;
      break;
    case RequestKind::kGuidance:
      ++stats_.guidance_requests;
      break;
    case RequestKind::kRetrieve:
      ++stats_.retrieve_requests;
      break;
    case RequestKind::kExplore:
      ++stats_.explore_requests;
      break;
  }
  if (kind != RequestKind::kQuery) {
    if (stats.cache_hit) ++stats_.cache_hits;
    if (stats.coalesced) ++stats_.coalesced_waits;
    if (stats.built) ++stats_.builds;
  }
  stats_.total_latency_ms += stats.latency_ms;
  stats_.max_latency_ms = std::max(stats_.max_latency_ms, stats.latency_ms);
}

QueryService::Stats QueryService::stats() const {
  Stats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  out.datasets = datasets_.size();
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    out.sessions = static_cast<int64_t>(entries_.size());
    // Generation-lifetime counters are summed at read time from each
    // session (lock order service → session is the one used everywhere).
    for (const std::unique_ptr<SessionEntry>& entry : entries_) {
      core::Session::CacheStats cache = entry->session->cache_stats();
      out.graveyard_size += cache.graveyard_size;
      out.live_generations += cache.live_generations;
      out.generations_evicted += cache.generations_evicted;
    }
  }
  return out;
}

}  // namespace qagview::service
