#include "service/query_service.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"
#include "sql/executor.h"

namespace qagview::service {

namespace {

/// Converts a core-session trace into the service-facing per-request view.
RequestStats FromTrace(const core::Session::RequestTrace& trace,
                       double latency_ms) {
  RequestStats stats;
  stats.latency_ms = latency_ms;
  stats.cache_hit = trace.cache_hit;
  stats.coalesced = trace.coalesced;
  stats.built = trace.built;
  return stats;
}

}  // namespace

QueryService::QueryService(ServiceOptions options)
    : options_(std::move(options)) {}

Status QueryService::RegisterTable(const std::string& name,
                                   storage::Table table) {
  return datasets_.Register(name, std::move(table));
}

Status QueryService::RegisterCsvFile(const std::string& name,
                                     const std::string& path) {
  return datasets_.RegisterCsvFile(name, path);
}

std::vector<std::string> QueryService::dataset_names() const {
  return datasets_.names();
}

Result<QueryInfo> QueryService::Query(const std::string& sql,
                                      const std::string& value_column) {
  WallTimer timer;
  const std::string trimmed(StripWhitespace(sql));
  RequestStats rs;
  if (trimmed.empty()) {
    rs.latency_ms = timer.ElapsedMillis();
    Record(RequestKind::kQuery, rs);
    return Status::InvalidArgument("empty SQL text");
  }
  // Session identity: byte-identical SQL (modulo surrounding whitespace)
  // over the same value column. '\x1f' cannot occur in either part.
  const std::string key = trimmed + '\x1f' + ToLower(value_column);
  while (true) {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = by_key_.find(key);
      if (it != by_key_.end()) {
        const SessionEntry& entry = *entries_[static_cast<size_t>(it->second)];
        QueryInfo info;
        info.handle = it->second;
        info.num_answers = entry.session->answers().size();
        info.num_attrs = entry.session->answers().num_attrs();
        if (!rs.coalesced) rs.cache_hit = true;
        lock.unlock();
        rs.latency_ms = timer.ElapsedMillis();
        info.stats = rs;
        Record(RequestKind::kQuery, rs);
        return info;
      }
    }
    // Miss: lead the execution, or join an identical in-flight one.
    std::shared_ptr<FlightLatch> flight;
    bool leader = false;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      if (by_key_.count(key) != 0) continue;  // published since the check
      auto fit = query_flights_.find(key);
      if (fit != query_flights_.end()) {
        flight = fit->second;
      } else {
        flight = std::make_shared<FlightLatch>();
        query_flights_.emplace(key, flight);
        leader = true;
      }
    }
    if (!leader) {
      rs.coalesced = true;
      Status status = flight->Wait();
      if (!status.ok()) {
        rs.latency_ms = timer.ElapsedMillis();
        Record(RequestKind::kQuery, rs);
        return status;
      }
      continue;  // the leader published the session; serve from cache
    }
    rs.built = true;
    // Execute outside the lock: SQL + answer-set materialization are the
    // expensive part, and the catalog snapshot stays valid regardless of
    // concurrent dataset registrations (tables are never removed).
    auto build = [&]() -> Result<QueryHandle> {
      sql::Catalog catalog = datasets_.SqlCatalog();
      QAG_ASSIGN_OR_RETURN(storage::Table result,
                           sql::ExecuteSql(trimmed, catalog));
      QAG_ASSIGN_OR_RETURN(std::unique_ptr<core::Session> session,
                           core::Session::FromTable(result, value_column));
      session->set_num_threads(options_.num_threads);
      auto entry = std::make_unique<SessionEntry>();
      entry->session = std::move(session);
      entry->sql = trimmed;
      entry->value_column = value_column;
      std::unique_lock<std::shared_mutex> lock(mu_);
      QueryHandle handle = static_cast<QueryHandle>(entries_.size());
      entries_.push_back(std::move(entry));
      by_key_.emplace(key, handle);
      return handle;
    };
    Result<QueryHandle> outcome = build();
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      query_flights_.erase(key);
    }
    flight->Finish(outcome.ok() ? Status::OK() : outcome.status());
    rs.latency_ms = timer.ElapsedMillis();
    Record(RequestKind::kQuery, rs);
    if (!outcome.ok()) return outcome.status();
    QueryInfo info;
    info.handle = *outcome;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      const SessionEntry& entry = *entries_[static_cast<size_t>(*outcome)];
      info.num_answers = entry.session->answers().size();
      info.num_attrs = entry.session->answers().num_attrs();
    }
    info.stats = rs;
    return info;
  }
}

Result<const QueryService::SessionEntry*> QueryService::Lookup(
    QueryHandle handle) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (handle < 0 || handle >= static_cast<QueryHandle>(entries_.size())) {
    return Status::NotFound(
        StrCat("unknown query handle ", handle, "; obtain one from Query()"));
  }
  const SessionEntry* entry = entries_[static_cast<size_t>(handle)].get();
  return entry;
}

Result<core::Solution> QueryService::Summarize(QueryHandle handle,
                                               const core::Params& params,
                                               RequestStats* stats) {
  WallTimer timer;
  QAG_ASSIGN_OR_RETURN(const SessionEntry* entry, Lookup(handle));
  core::Session::RequestTrace trace;
  Result<core::Solution> solution =
      entry->session->Summarize(params, core::HybridOptions(), &trace);
  RequestStats rs = FromTrace(trace, timer.ElapsedMillis());
  Record(RequestKind::kSummarize, rs);
  if (stats != nullptr) *stats = rs;
  return solution;
}

Result<const core::SolutionStore*> QueryService::Guidance(
    QueryHandle handle, int top_l, const core::PrecomputeOptions& options,
    RequestStats* stats) {
  WallTimer timer;
  QAG_ASSIGN_OR_RETURN(const SessionEntry* entry, Lookup(handle));
  core::Session::RequestTrace trace;
  Result<const core::SolutionStore*> store =
      entry->session->Guidance(top_l, options, &trace);
  RequestStats rs = FromTrace(trace, timer.ElapsedMillis());
  Record(RequestKind::kGuidance, rs);
  if (stats != nullptr) *stats = rs;
  return store;
}

Result<core::Solution> QueryService::Retrieve(QueryHandle handle, int top_l,
                                              int d, int k,
                                              RequestStats* stats) {
  WallTimer timer;
  QAG_ASSIGN_OR_RETURN(const SessionEntry* entry, Lookup(handle));
  core::Session::RequestTrace trace;
  Result<core::Solution> solution =
      entry->session->Retrieve(top_l, d, k, &trace);
  RequestStats rs = FromTrace(trace, timer.ElapsedMillis());
  Record(RequestKind::kRetrieve, rs);
  if (stats != nullptr) *stats = rs;
  return solution;
}

Result<ExploreResult> QueryService::Explore(QueryHandle handle,
                                            const core::Params& params,
                                            int max_members) {
  WallTimer timer;
  QAG_ASSIGN_OR_RETURN(const SessionEntry* entry, Lookup(handle));
  core::Session::RequestTrace trace;
  auto run = [&]() -> Result<ExploreResult> {
    ExploreResult result;
    // Render against the exact universe that produced the solution — a
    // second UniverseFor(params.L) lookup could return a narrower
    // universe published concurrently, in which the solution's cluster
    // ids would be meaningless.
    const core::ClusterUniverse* universe = nullptr;
    QAG_ASSIGN_OR_RETURN(
        result.solution,
        entry->session->SummarizeWith(params, &universe,
                                      core::HybridOptions(), &trace));
    result.view = core::BuildTwoLayerView(*universe, result.solution);
    result.summary = core::RenderSummary(*universe, result.solution);
    result.expanded =
        core::RenderExpanded(*universe, result.solution, max_members);
    return result;
  };
  Result<ExploreResult> result = run();
  RequestStats rs = FromTrace(trace, timer.ElapsedMillis());
  Record(RequestKind::kExplore, rs);
  if (result.ok()) result->stats = rs;
  return result;
}

Result<core::Session*> QueryService::session(QueryHandle handle) const {
  QAG_ASSIGN_OR_RETURN(const SessionEntry* entry, Lookup(handle));
  return entry->session.get();
}

void QueryService::Record(RequestKind kind, const RequestStats& stats) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  switch (kind) {
    case RequestKind::kQuery:
      ++stats_.queries;
      if (stats.cache_hit) ++stats_.query_cache_hits;
      if (stats.coalesced) ++stats_.query_coalesced;
      break;
    case RequestKind::kSummarize:
      ++stats_.summarize_requests;
      break;
    case RequestKind::kGuidance:
      ++stats_.guidance_requests;
      break;
    case RequestKind::kRetrieve:
      ++stats_.retrieve_requests;
      break;
    case RequestKind::kExplore:
      ++stats_.explore_requests;
      break;
  }
  if (kind != RequestKind::kQuery) {
    if (stats.cache_hit) ++stats_.cache_hits;
    if (stats.coalesced) ++stats_.coalesced_waits;
    if (stats.built) ++stats_.builds;
  }
  stats_.total_latency_ms += stats.latency_ms;
  stats_.max_latency_ms = std::max(stats_.max_latency_ms, stats.latency_ms);
}

QueryService::Stats QueryService::stats() const {
  Stats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  out.datasets = datasets_.size();
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    out.sessions = static_cast<int64_t>(entries_.size());
  }
  return out;
}

}  // namespace qagview::service
