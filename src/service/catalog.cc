#include "service/catalog.h"

#include <mutex>
#include <utility>

#include "common/string_util.h"
#include "storage/csv.h"

namespace qagview::service {

Status DatasetCatalog::Register(const std::string& name,
                                storage::Table table) {
  std::string key = ToLower(name);
  if (key.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = tables_.emplace(
      std::move(key), std::make_unique<storage::Table>(std::move(table)));
  if (!inserted) {
    return Status::AlreadyExists(
        StrCat("dataset '", name, "' is already registered"));
  }
  return Status::OK();
}

Status DatasetCatalog::RegisterCsvFile(const std::string& name,
                                       const std::string& path) {
  QAG_ASSIGN_OR_RETURN(storage::Table table, storage::ReadCsvFile(path));
  return Register(name, std::move(table));
}

const storage::Table* DatasetCatalog::Find(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> DatasetCatalog::names() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;  // map iteration order: already sorted
}

int DatasetCatalog::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int>(tables_.size());
}

sql::Catalog DatasetCatalog::SqlCatalog() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  sql::Catalog catalog;
  for (const auto& [name, table] : tables_) {
    catalog.Register(name, table.get());
  }
  return catalog;
}

}  // namespace qagview::service
