#include "service/catalog.h"

#include <utility>

#include "common/string_util.h"
#include "storage/csv.h"

namespace qagview::service {

uint64_t DatasetCatalog::SampleSeed(const std::string& key) {
  // FNV-1a over the lower-cased dataset name.
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::shared_ptr<storage::ReservoirSampler> DatasetCatalog::MakeSampler(
    const std::string& key, const storage::Table& table) const {
  if (options_.sample_capacity <= 0) return nullptr;
  auto sampler = std::make_shared<storage::ReservoirSampler>(
      table.schema(), options_.sample_capacity, SampleSeed(key));
  sampler->AddTable(table);
  return sampler;
}

Status DatasetCatalog::Register(const std::string& name,
                                storage::Table table) {
  std::string key = ToLower(name);
  if (key.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  Entry entry;
  entry.snapshot.table = std::make_shared<storage::Table>(std::move(table));
  // Sample construction runs before the exclusive lock: a bulk load only
  // touches O(capacity * log(n/capacity)) rows, but there is no reason to
  // hold every reader out while it scans.
  entry.sampler = MakeSampler(key, *entry.snapshot.table);
  if (entry.sampler != nullptr) entry.snapshot.sample = entry.sampler->Snapshot();
  entry.writer = std::make_shared<std::mutex>();
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (tables_.count(key) != 0) {
    return Status::AlreadyExists(
        StrCat("dataset '", name, "' is already registered"));
  }
  entry.snapshot.version = ++version_;
  tables_.emplace(std::move(key), std::move(entry));
  return Status::OK();
}

Status DatasetCatalog::RegisterCsvFile(const std::string& name,
                                       const std::string& path) {
  QAG_ASSIGN_OR_RETURN(storage::Table table, storage::ReadCsvFile(path));
  return Register(name, std::move(table));
}

Result<uint64_t> DatasetCatalog::AppendRows(
    const std::string& name,
    const std::vector<std::vector<storage::Value>>& rows) {
  std::string key = ToLower(name);
  // The dataset's writer mutex serializes the whole read-clone-publish
  // window (lost-update guard) without blocking writers to other datasets.
  // Readers never wait on it, and mu_ is held only for the map accesses.
  std::shared_ptr<std::mutex> writer;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = tables_.find(key);
    if (it == tables_.end()) {
      return Status::NotFound(
          StrCat("dataset '", name, "' is not registered"));
    }
    writer = it->second.writer;
  }
  std::lock_guard<std::mutex> write_lock(*writer);
  TableSnapshot current;
  std::shared_ptr<storage::ReservoirSampler> sampler;
  {
    // Re-read under the writer lock: another writer may have published a
    // newer snapshot between the lookup and the lock acquisition. The
    // sampler is fetched here too — it is only ever swapped under this
    // writer mutex (ReplaceTable), which we now hold.
    std::shared_lock<std::shared_mutex> lock(mu_);
    const Entry& e = tables_.at(key);
    current = e.snapshot;
    sampler = e.sampler;
  }
  storage::Table next = current.table->Clone();
  QAG_RETURN_IF_ERROR(next.AppendRows(rows));
  // Feed the sampler only after AppendRows validated the whole batch, so a
  // rejected append leaves the sample (like the table) untouched.
  std::shared_ptr<const storage::TableSample> sample;
  if (sampler != nullptr) {
    for (const auto& row : rows) sampler->Add(row);
    sample = sampler->Snapshot();
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  Entry& entry = tables_.at(key);
  entry.snapshot.table = std::make_shared<storage::Table>(std::move(next));
  entry.snapshot.sample = std::move(sample);
  entry.snapshot.version = ++version_;  // old snapshot lives on via pins
  return entry.snapshot.version;
}

Result<uint64_t> DatasetCatalog::ReplaceTable(const std::string& name,
                                              storage::Table table) {
  std::string key = ToLower(name);
  if (key.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  auto snapshot = std::make_shared<storage::Table>(std::move(table));
  // The replacement's sample starts from scratch (the schema may change),
  // built before any lock for the same reason as in Register.
  std::shared_ptr<storage::ReservoirSampler> sampler =
      MakeSampler(key, *snapshot);
  std::shared_ptr<const storage::TableSample> sample;
  if (sampler != nullptr) sample = sampler->Snapshot();
  while (true) {
    std::shared_ptr<std::mutex> writer;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = tables_.find(key);
      if (it != tables_.end()) writer = it->second.writer;
    }
    if (writer == nullptr) {
      // Creating: publish under the exclusive lock, unless another writer
      // registered the name meanwhile (then retry with its writer mutex).
      std::unique_lock<std::shared_mutex> lock(mu_);
      if (tables_.count(key) != 0) continue;
      Entry entry;
      entry.snapshot.table = snapshot;
      entry.snapshot.sample = sample;
      entry.snapshot.version = ++version_;
      entry.writer = std::make_shared<std::mutex>();
      entry.sampler = sampler;
      uint64_t version = entry.snapshot.version;
      tables_.emplace(std::move(key), std::move(entry));
      return version;
    }
    // Replacing: hold the dataset's writer mutex so a concurrent
    // AppendRows clone cannot publish over this replacement (lost update).
    std::lock_guard<std::mutex> write_lock(*writer);
    std::unique_lock<std::shared_mutex> lock(mu_);
    Entry& entry = tables_.at(key);
    entry.snapshot.table = snapshot;
    entry.snapshot.sample = sample;
    entry.snapshot.version = ++version_;
    entry.sampler = sampler;
    return entry.snapshot.version;
  }
}

TableSnapshot DatasetCatalog::Find(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? TableSnapshot() : it->second.snapshot;
}

uint64_t DatasetCatalog::TableVersion(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? 0 : it->second.snapshot.version;
}

uint64_t DatasetCatalog::version() const {
  // Lock-free: the QueryService staleness fast path reads this once per
  // warm request. Writers bump the counter under mu_ exclusive after
  // installing the new snapshot; acquire pairs with that (seq_cst) bump.
  return version_.load(std::memory_order_acquire);
}

std::vector<std::string> DatasetCatalog::names() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) out.push_back(name);
  return out;  // map iteration order: already sorted
}

int DatasetCatalog::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int>(tables_.size());
}

CatalogSnapshot DatasetCatalog::Snapshot() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  CatalogSnapshot out;
  // Stable while the shared lock excludes writers.
  out.catalog_version = version_.load(std::memory_order_relaxed);
  out.pins.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) {
    out.sql.Register(name, entry.snapshot.table.get());
    out.versions.emplace(name, entry.snapshot.version);
    out.pins.push_back(entry.snapshot.table);
    if (entry.snapshot.sample != nullptr) {
      out.sql.RegisterSample(name, &entry.snapshot.sample->rows,
                             entry.snapshot.sample->population_rows);
      out.sample_pins.push_back(entry.snapshot.sample);
    }
  }
  return out;
}

}  // namespace qagview::service
