#include "service/catalog.h"

#include <utility>

#include "common/string_util.h"
#include "storage/csv.h"

namespace qagview::service {

Status DatasetCatalog::Register(const std::string& name,
                                storage::Table table) {
  std::string key = ToLower(name);
  if (key.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (tables_.count(key) != 0) {
    return Status::AlreadyExists(
        StrCat("dataset '", name, "' is already registered"));
  }
  Entry entry;
  entry.snapshot.table = std::make_shared<storage::Table>(std::move(table));
  entry.snapshot.version = ++version_;
  entry.writer = std::make_shared<std::mutex>();
  tables_.emplace(std::move(key), std::move(entry));
  return Status::OK();
}

Status DatasetCatalog::RegisterCsvFile(const std::string& name,
                                       const std::string& path) {
  QAG_ASSIGN_OR_RETURN(storage::Table table, storage::ReadCsvFile(path));
  return Register(name, std::move(table));
}

Result<uint64_t> DatasetCatalog::AppendRows(
    const std::string& name,
    const std::vector<std::vector<storage::Value>>& rows) {
  std::string key = ToLower(name);
  // The dataset's writer mutex serializes the whole read-clone-publish
  // window (lost-update guard) without blocking writers to other datasets.
  // Readers never wait on it, and mu_ is held only for the map accesses.
  std::shared_ptr<std::mutex> writer;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = tables_.find(key);
    if (it == tables_.end()) {
      return Status::NotFound(
          StrCat("dataset '", name, "' is not registered"));
    }
    writer = it->second.writer;
  }
  std::lock_guard<std::mutex> write_lock(*writer);
  TableSnapshot current;
  {
    // Re-read under the writer lock: another writer may have published a
    // newer snapshot between the lookup and the lock acquisition.
    std::shared_lock<std::shared_mutex> lock(mu_);
    current = tables_.at(key).snapshot;
  }
  storage::Table next = current.table->Clone();
  QAG_RETURN_IF_ERROR(next.AppendRows(rows));
  std::unique_lock<std::shared_mutex> lock(mu_);
  Entry& entry = tables_.at(key);
  entry.snapshot.table = std::make_shared<storage::Table>(std::move(next));
  entry.snapshot.version = ++version_;  // old snapshot lives on via pins
  return entry.snapshot.version;
}

Result<uint64_t> DatasetCatalog::ReplaceTable(const std::string& name,
                                              storage::Table table) {
  std::string key = ToLower(name);
  if (key.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  auto snapshot = std::make_shared<storage::Table>(std::move(table));
  while (true) {
    std::shared_ptr<std::mutex> writer;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = tables_.find(key);
      if (it != tables_.end()) writer = it->second.writer;
    }
    if (writer == nullptr) {
      // Creating: publish under the exclusive lock, unless another writer
      // registered the name meanwhile (then retry with its writer mutex).
      std::unique_lock<std::shared_mutex> lock(mu_);
      if (tables_.count(key) != 0) continue;
      Entry entry;
      entry.snapshot.table = snapshot;
      entry.snapshot.version = ++version_;
      entry.writer = std::make_shared<std::mutex>();
      uint64_t version = entry.snapshot.version;
      tables_.emplace(std::move(key), std::move(entry));
      return version;
    }
    // Replacing: hold the dataset's writer mutex so a concurrent
    // AppendRows clone cannot publish over this replacement (lost update).
    std::lock_guard<std::mutex> write_lock(*writer);
    std::unique_lock<std::shared_mutex> lock(mu_);
    Entry& entry = tables_.at(key);
    entry.snapshot.table = snapshot;
    entry.snapshot.version = ++version_;
    return entry.snapshot.version;
  }
}

TableSnapshot DatasetCatalog::Find(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? TableSnapshot() : it->second.snapshot;
}

uint64_t DatasetCatalog::TableVersion(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? 0 : it->second.snapshot.version;
}

uint64_t DatasetCatalog::version() const {
  // Lock-free: the QueryService staleness fast path reads this once per
  // warm request. Writers bump the counter under mu_ exclusive after
  // installing the new snapshot; acquire pairs with that (seq_cst) bump.
  return version_.load(std::memory_order_acquire);
}

std::vector<std::string> DatasetCatalog::names() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) out.push_back(name);
  return out;  // map iteration order: already sorted
}

int DatasetCatalog::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int>(tables_.size());
}

CatalogSnapshot DatasetCatalog::Snapshot() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  CatalogSnapshot out;
  // Stable while the shared lock excludes writers.
  out.catalog_version = version_.load(std::memory_order_relaxed);
  out.pins.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) {
    out.sql.Register(name, entry.snapshot.table.get());
    out.versions.emplace(name, entry.snapshot.version);
    out.pins.push_back(entry.snapshot.table);
  }
  return out;
}

}  // namespace qagview::service
