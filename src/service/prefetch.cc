#include "service/prefetch.h"

#include <algorithm>

namespace qagview::service {

ExplorationPredictor::ExplorationPredictor(int max_predictions)
    : max_predictions_(std::max(1, max_predictions)) {}

std::vector<int> ExplorationPredictor::NextLevels(study::MoveKind kind,
                                                  int level,
                                                  int num_answers) const {
  // Ask the model for extra candidates: clamping and dedup below may
  // collapse some (e.g. +1 and +2 both clamp to num_answers).
  const std::vector<int> deltas = study::NextMoveModel::Default().PredictDeltaL(
      kind, max_predictions_ + 2);
  std::vector<int> out;
  for (int delta : deltas) {
    if (static_cast<int>(out.size()) >= max_predictions_) break;
    const int target =
        std::min(std::max(level + delta, 1), std::max(num_answers, 1));
    if (target == level) continue;
    if (std::find(out.begin(), out.end(), target) != out.end()) continue;
    out.push_back(target);
  }
  return out;
}

std::vector<int> ExplorationPredictor::InitialLevels(int num_answers) const {
  const std::vector<int> levels =
      study::NextMoveModel::Default().PredictInitialL(max_predictions_ + 2);
  std::vector<int> out;
  for (int level : levels) {
    if (static_cast<int>(out.size()) >= max_predictions_) break;
    const int target = std::min(std::max(level, 1), std::max(num_answers, 1));
    if (std::find(out.begin(), out.end(), target) != out.end()) continue;
    out.push_back(target);
  }
  return out;
}

}  // namespace qagview::service
