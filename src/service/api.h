#ifndef QAGVIEW_SERVICE_API_H_
#define QAGVIEW_SERVICE_API_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/explore.h"
#include "core/precompute.h"
#include "core/solution.h"
#include "storage/value.h"

/// \file
/// \brief The transport-agnostic request/response surface of the service
/// layer: plain value structs, one pair per operation, serializable without
/// touching any core object.
///
/// Everything here obeys three rules:
///
///  * **Value types only.** No pointers, no handles into live state other
///    than the opaque QueryHandle integer — a response can be serialized,
///    shipped over a socket, and compared bit-for-bit against an
///    in-process call (the server_test bit-identity contract).
///  * **Uniform provenance.** Every response embeds its RequestStats and
///    an ApproxMeta block instead of optional out-params, so clients (and
///    the HTTP layer) never need a side channel to learn what a request
///    cost or whether it served exact data.
///  * **Transport stays out.** src/server/ serializes these structs to
///    JSON; the structs themselves know nothing about JSON or sockets, and
///    QueryService knows nothing about either (DESIGN layering rules).

namespace qagview::service {

/// How Query() trades answer latency against exactness.
enum class QueryMode {
  /// Always build the exact answer set before responding (the default;
  /// identical to the service's pre-approximation behaviour).
  kExactOnly,
  /// Cold queries respond with a sample-based approximate answer set
  /// immediately; a background exact build then republishes through the
  /// ordinary refresh machinery (two-phase publication). Warm requests see
  /// whichever phase is published.
  kApproxFirst,
  /// Respond approximately and stay approximate until the client
  /// explicitly calls Refine() (the refine trigger).
  kApproxOnly,
};

/// Per-Query() knobs (the mode knob plus its parameters).
struct QueryOptions {
  QueryMode mode = QueryMode::kExactOnly;
  /// Two-sided confidence level of per-answer error bounds in the
  /// approximate modes; must be in (0, 1). Ignored by kExactOnly.
  double confidence = 0.95;
};

/// What one request cost and where its answer came from — returned
/// alongside every response so clients (and the stress harness) can see
/// cache behaviour per call, not just in aggregate.
struct RequestStats {
  double latency_ms = 0.0;
  /// Served from an already-cached structure (session, universe, or grid).
  bool cache_hit = false;
  /// Blocked on another client's identical in-flight work (single-flight
  /// coalescing) instead of duplicating it.
  bool coalesced = false;
  /// This request paid for the build (cache miss, leader).
  bool built = false;
  /// This request found its handle stale (the catalog moved past the
  /// versions the session was built from) and led the refresh: SQL
  /// re-executed against the new snapshot, caches reused or rebuilt by
  /// input fingerprint (core::Session::Refresh).
  bool refreshed = false;
  /// The answer set this request served from was approximate (sample-based
  /// estimates with error bounds); false = exact. Exact-mode responses are
  /// never approximate, by construction.
  bool approximate = false;
  /// Sample fraction (n / N) behind an approximate response; 1.0 if exact.
  double sample_fraction = 1.0;
  /// Largest per-answer confidence-interval half-width in the served
  /// answer set; 0.0 if exact.
  double max_bound = 0.0;
};

/// Exact/approximate provenance of the answer set a response served from,
/// embedded uniformly in every response struct. An approx-first handle
/// starts with is_exact == false and flips to true once background
/// refinement republishes the exact generation.
struct ApproxMeta {
  bool is_exact = true;
  /// Sample fraction (n / N) behind the served set; 1.0 when exact.
  double sample_fraction = 1.0;
  /// Largest per-answer confidence-interval half-width; 0.0 when exact.
  double max_bound = 0.0;
};

/// The ApproxMeta a finished request observed (RequestStats carries the
/// same three facts, stamped from the same wait-free approximation() load).
inline ApproxMeta ApproxFromStats(const RequestStats& stats) {
  ApproxMeta out;
  out.is_exact = !stats.approximate;
  out.sample_fraction = stats.sample_fraction;
  out.max_bound = stats.max_bound;
  return out;
}

/// Opaque reference to a cached query answer set; obtained from Query().
/// The handle itself (and the session behind it) stays valid for the
/// service's lifetime — but the structures reached *through* it follow
/// drain-then-evict semantics: Guidance returns a shared_ptr that pins its
/// answer-set generation, and once a dataset update retires a generation
/// it is destroyed as soon as the last such handle drops. Never store raw
/// pointers extracted from those handles.
using QueryHandle = int64_t;

/// Query() response: the handle plus the answer-set shape.
struct QueryInfo {
  QueryHandle handle = -1;
  int num_answers = 0;  // n — ranked tuples in the answer set
  int num_attrs = 0;    // m — grouping attributes
  RequestStats stats;   // cache_hit = an existing session was reused
  /// Provenance of the published answer set at response time. An
  /// approx-first handle starts with is_exact == false and flips to true
  /// once background refinement republishes the exact generation.
  bool is_exact = true;
  double sample_fraction = 1.0;  // n / N (1.0 when exact)
  double max_bound = 0.0;        // largest per-answer CI half-width
  double confidence = 0.0;       // bound confidence level (0 when exact)
};

/// Explore() response: the solution with both display layers rendered
/// (Figures 1b/1c).
struct ExploreResult {
  core::Solution solution;
  core::TwoLayerView view;
  std::string summary;   // first layer (RenderSummary)
  std::string expanded;  // second layer (RenderExpanded, bounded members)
  RequestStats stats;
};

// --- Request/response pairs ----------------------------------------------

/// Executes an aggregate query and opens (or reuses) the session over its
/// ranked answers — the struct form of Query(sql, value_column, options).
struct QueryRequest {
  std::string sql;
  /// The aggregate output column to rank by.
  std::string value_column;
  QueryOptions options;
};

struct QueryResponse {
  QueryHandle handle = -1;
  int num_answers = 0;  // n — ranked tuples in the answer set
  int num_attrs = 0;    // m — grouping attributes
  /// Bound confidence level of an approximate set (0 when exact).
  double confidence = 0.0;
  ApproxMeta approx;
  RequestStats stats;
};

/// One-off summarization under (k, L, D).
struct SummarizeRequest {
  QueryHandle handle = -1;
  core::Params params;
};

struct SummarizeResponse {
  core::Solution solution;
  ApproxMeta approx;
  RequestStats stats;
};

/// Ensures the (k, D) grid serving `top_l` exists and reports its shape.
struct GuidanceRequest {
  QueryHandle handle = -1;
  int top_l = 0;
  core::PrecomputeOptions options;
};

/// The grid's shape: everything a client needs to drive Retrieve()
/// without holding the store itself (the store is an in-process pinned
/// handle; over a transport only its metadata travels).
struct GuidanceResponse {
  int store_l = 0;  // the L the grid was built for
  int k_max = 0;    // largest stored k (queries above clamp)
  /// Stored distance constraints, ascending, with the smallest k that has
  /// a stored solution for each (min_ks[i] pairs with d_values[i]).
  std::vector<int> d_values;
  std::vector<int> min_ks;
  /// Space metric: stored (cluster, k-interval) entries vs. what naive
  /// per-(k,D) cluster lists would hold.
  int64_t num_intervals = 0;
  int64_t naive_entries = 0;
  ApproxMeta approx;
  RequestStats stats;
};

/// Instant retrieval from a precomputed grid.
struct RetrieveRequest {
  QueryHandle handle = -1;
  int top_l = 0;
  int d = 0;
  int k = 0;
};

struct RetrieveResponse {
  core::Solution solution;
  ApproxMeta approx;
  RequestStats stats;
};

/// Summarize plus both rendered display layers (Figures 1b/1c).
struct ExploreRequest {
  QueryHandle handle = -1;
  core::Params params;
  /// Max tuples listed per cluster in the expanded layer (0 = all).
  int max_members = 8;
};

struct ExploreResponse {
  core::Solution solution;
  core::TwoLayerView view;
  std::string summary;   // first layer (RenderSummary)
  std::string expanded;  // second layer (RenderExpanded, bounded members)
  ApproxMeta approx;
  RequestStats stats;
};

/// The refine trigger: synchronously upgrades the handle's answer set to
/// exact (and fresh).
struct RefineRequest {
  QueryHandle handle = -1;
};

struct RefineResponse {
  /// is_exact is true on success by definition; the meta still reports
  /// the published set's provenance uniformly.
  ApproxMeta approx;
  RequestStats stats;
};

/// Appends rows to a dataset, publishing a new immutable snapshot.
struct AppendRowsRequest {
  std::string dataset;
  std::vector<std::vector<storage::Value>> rows;
};

struct AppendRowsResponse {
  /// The new catalog version.
  uint64_t version = 0;
  RequestStats stats;  // latency only; appends bypass the session caches
};

/// Monotonic service-wide counters (a superset of what each RequestStats
/// reported): request mix, cache behaviour, and latency totals.
struct ServiceStats {
  int64_t datasets = 0;
  int64_t sessions = 0;           // distinct cached (sql, value) pairs
  int64_t queries = 0;            // Query() calls
  int64_t query_cache_hits = 0;   // ... served an existing session
  int64_t query_coalesced = 0;    // ... waited on an identical in-flight
  int64_t summarize_requests = 0;
  int64_t guidance_requests = 0;
  int64_t retrieve_requests = 0;
  int64_t explore_requests = 0;
  int64_t cache_hits = 0;       // per-request traces, summed
  int64_t coalesced_waits = 0;  // per-request traces, summed
  int64_t builds = 0;           // per-request traces, summed
  /// Stale-handle refreshes led (SQL re-executions after catalog moved),
  /// and the subset that proved the answer set unchanged and reused
  /// every session cache.
  int64_t refreshes = 0;
  int64_t refresh_full_reuses = 0;
  /// Query() calls answered with an approximate (sample-based) set, and
  /// non-query ops (Summarize/Guidance/Retrieve/Explore) that served
  /// from one.
  int64_t approx_queries = 0;
  int64_t approx_served = 0;
  /// Refine() calls plus background refinement tasks.
  int64_t refine_requests = 0;
  /// Exact builds that upgraded an approximate generation, and
  /// refinement tasks that found the upgrade already done (another
  /// trigger led it, or a refresh landed exact first).
  int64_t refinements = 0;
  int64_t refinements_superseded = 0;
  /// Generation lifetime across all sessions (core::Session::CacheStats
  /// summed at read time): retired generations still pinned by external
  /// handles, generations currently alive (graveyard + one live per
  /// session), and retired generations whose readers drained and whose
  /// memory was reclaimed.
  int64_t graveyard_size = 0;
  int64_t live_generations = 0;
  int64_t generations_evicted = 0;
  /// Exploration-aware speculation: prefetch tasks enqueued from the
  /// next-move predictor, foreground requests that landed on a structure
  /// a prefetch task built (served as a warm RCU read), and sessions
  /// whose guidance grid was restored from a persisted warm-start
  /// snapshot instead of a cold build.
  int64_t prefetch_issued = 0;
  int64_t prefetch_hits = 0;
  int64_t warm_start_loads = 0;
  double total_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  int64_t requests() const {
    return queries + summarize_requests + guidance_requests +
           retrieve_requests + explore_requests + refine_requests;
  }
};

}  // namespace qagview::service

#endif  // QAGVIEW_SERVICE_API_H_
