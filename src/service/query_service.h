#ifndef QAGVIEW_SERVICE_QUERY_SERVICE_H_
#define QAGVIEW_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/background_scheduler.h"
#include "common/result.h"
#include "common/sharded_stats.h"
#include "common/single_flight.h"
#include "core/explore.h"
#include "core/session.h"
#include "service/api.h"
#include "service/catalog.h"
#include "service/prefetch.h"

namespace qagview::service {

/// Service-wide knobs, fixed at construction.
struct ServiceOptions {
  /// Worker count handed to every core::Session the service opens (<= 0:
  /// hardware concurrency). Per-call PrecomputeOptions::num_threads still
  /// wins for that call.
  int num_threads = 0;
  /// Reservoir capacity of the per-dataset uniform samples backing
  /// approximate-first serving (DatasetCatalogOptions::sample_capacity).
  /// <= 0 disables sampling: every mode serves exact answers.
  int sample_capacity = 4096;
  /// Worker count of the unified background scheduler (warm-start loads,
  /// refinements, prefetch; <= 0: one worker). One worker preserves the
  /// strict FIFO refinement order the pre-scheduler service had.
  int background_threads = 1;
  /// Exploration-aware prefetch: after each foreground Summarize /
  /// Guidance / Explore (and each cold Query), speculatively build the
  /// predicted-next coverage levels' universes and grids on the
  /// scheduler's lowest-priority lane. A correct prediction turns the
  /// client's next request into a warm RCU read; a wrong one costs only
  /// idle background cycles. Off by default: speculative builds perturb
  /// the exact per-request build/hit accounting some callers assert on.
  bool prefetch = false;
  /// Speculative builds issued per observed foreground move (>= 1).
  int prefetch_predictions = 2;
  /// Directory for persistent warm-start snapshots (created by the
  /// caller; empty = disabled). When set, foreground-built guidance grids
  /// are snapshotted to disk in the background, and a cold Query()
  /// schedules a foreground-lane reload of its session's snapshot —
  /// validated by fingerprint, so stale or corrupt files degrade to a
  /// cold build, never a wrong answer.
  std::string snapshot_dir;
};

// QueryMode, QueryOptions, RequestStats, QueryHandle, QueryInfo,
// ExploreResult, ServiceStats, and the request/response struct pairs all
// live in service/api.h (the transport-agnostic API surface); this header
// re-exports them through its include for existing callers.

/// \brief Thread-safe front door to the whole pipeline: datasets → SQL →
/// cached answer sets → shared interactive sessions.
///
/// The paper's prototype is a single-user web app over PostgreSQL
/// (Appendix A.3); QueryService is the multi-client equivalent the ROADMAP
/// asks for. It owns a `DatasetCatalog` of named tables, executes
/// aggregate SQL through `sql::ExecuteSql`, materializes each distinct
/// (sql, value column) pair into one `core::AnswerSet` + `core::Session`,
/// and multiplexes any number of concurrent clients onto those shared
/// sessions:
///
///  * every public method may be called from any thread at any time;
///  * identical concurrent Query() calls coalesce onto one SQL execution
///    and share the resulting session (single-flight, like the session's
///    own universe/grid builds);
///  * Summarize / Guidance / Retrieve / Explore delegate to the
///    thread-safe `core::Session`, so N clients re-parameterizing the same
///    answer set trigger at most one universe build and one grid
///    precompute per distinct shape — everyone else waits and serves from
///    cache;
///  * results are bit-identical to a single-threaded execution of the same
///    requests (sessions and stores are deterministic and immutable once
///    published); only the statistics depend on interleaving.
///
/// **The warm request path is lock-free** (RCU, mirroring core::Session's
/// read path): the session registry is an immutable snapshot behind an
/// atomically published pointer, so Lookup and a warm repeat Query() never
/// take the registry lock; staleness is ruled out by comparing one atomic
/// per-entry freshness version against the atomic catalog version (the
/// per-table dependency walk only runs after a dataset actually changed);
/// and per-request statistics land in per-thread shards
/// (common/sharded_stats.h) aggregated by stats(). A warm
/// Summarize/Guidance/Retrieve/Explore therefore acquires no service- or
/// session-level lock at all — aggregate throughput scales with cores
/// instead of serializing on a mutex.
///
/// **Versioned updates.** Datasets evolve through AppendRows /
/// ReplaceTable, each publishing a new immutable snapshot under the next
/// catalog version. Every cached handle records the table versions its SQL
/// was executed against; on the next use of a stale handle the service
/// transparently re-executes the SQL against the newest snapshot
/// (single-flight — concurrent users of the handle coalesce onto one
/// refresh) and hands the result to `core::Session::Refresh`, which reuses
/// every cache whose input fingerprint is provably unchanged and retires
/// the rest. The refresh invariant, enforced by the differential harness:
/// any sequence of appends and queries yields responses bit-identical to a
/// fresh service built from the final table state.
///
/// **Lifetime (drain-then-evict).** Query handles and their sessions stay
/// valid for the service's lifetime. Structures served through them do
/// not: Guidance returns a `shared_ptr` handle pinning the answer-set
/// generation it belongs to, and a generation retired by a refresh is
/// destroyed as soon as its last external handle drops — in-flight readers
/// drain safely, and memory stays bounded under sustained updates
/// (`Stats::graveyard_size` / `generations_evicted` observe this). Hold
/// the shared_ptr for as long as you read; never store the raw pointer.
class QueryService {
 public:
  explicit QueryService(ServiceOptions options = ServiceOptions());

  // --- Dataset catalog -------------------------------------------------

  /// Takes ownership of `table` as dataset `name` (case-insensitive).
  Status RegisterTable(const std::string& name, storage::Table table);

  /// Loads a CSV file and registers it as dataset `name`.
  Status RegisterCsvFile(const std::string& name, const std::string& path);

  /// Appends rows to dataset `name`, publishing a new immutable snapshot
  /// (existing readers keep theirs). Handles over queries that read the
  /// dataset become stale and refresh transparently on next use. Returns
  /// the new catalog version.
  Result<uint64_t> AppendRows(
      const std::string& name,
      const std::vector<std::vector<storage::Value>>& rows);

  /// Struct form of AppendRows: same semantics, with the request's cost
  /// embedded in the response like every other operation.
  Result<AppendRowsResponse> AppendRows(const AppendRowsRequest& request);

  /// Replaces dataset `name` wholesale (schema may change), creating it if
  /// absent; same staleness semantics as AppendRows.
  Result<uint64_t> ReplaceTable(const std::string& name,
                                storage::Table table);

  /// Registered dataset names (lower-cased, sorted).
  std::vector<std::string> dataset_names() const;

  /// Current catalog version (bumps on every dataset mutation).
  uint64_t catalog_version() const;

  // --- Query → shared session ------------------------------------------

  /// Executes an aggregate query and opens (or reuses) the session over
  /// its ranked answers. `value_column` names the aggregate output column
  /// (the ranking value). Two calls with byte-identical SQL (modulo
  /// surrounding whitespace), value column, and query options share one
  /// session; identical concurrent calls run the SQL once.
  Result<QueryInfo> Query(const std::string& sql,
                          const std::string& value_column);

  /// Query with a mode knob: kExactOnly behaves exactly like the overload
  /// above; the approximate modes answer cold queries from the dataset's
  /// uniform sample (estimates with per-answer bounds at
  /// `options.confidence`) and, for kApproxFirst, schedule a background
  /// exact build that republishes without ever blocking a foreground
  /// request. When no useful sample exists (sampling disabled, tiny table,
  /// or no bounded aggregate), the response is exact and marked so.
  Result<QueryInfo> Query(const std::string& sql,
                          const std::string& value_column,
                          const QueryOptions& options);

  /// Struct form of Query(): identical semantics, with provenance and
  /// request stats embedded uniformly (the shape src/server serializes).
  Result<QueryResponse> Query(const QueryRequest& request);

  /// The refine trigger: synchronously upgrades the handle's answer set to
  /// exact (and fresh), coalescing with any in-flight refresh or background
  /// refinement of the same handle. No-op on an already-exact handle. The
  /// published exact generation is bit-identical to a cold exact rebuild
  /// from the same snapshot.
  Status Refine(QueryHandle handle, RequestStats* stats = nullptr);

  /// Struct form of Refine().
  Result<RefineResponse> Refine(const RefineRequest& request);

  // --- Interactive ops on a handle -------------------------------------

  /// One-off summarization under (k, L, D) — Session::Summarize.
  Result<core::Solution> Summarize(QueryHandle handle,
                                   const core::Params& params,
                                   RequestStats* stats = nullptr);

  /// Struct form of Summarize().
  Result<SummarizeResponse> Summarize(const SummarizeRequest& request);

  /// Ensures the (k, D) grid serving `top_l` exists — Session::Guidance.
  /// The returned handle pins the store (and its whole answer-set
  /// generation) across dataset refreshes; drop it when done reading so a
  /// superseded generation can be evicted.
  Result<std::shared_ptr<const core::SolutionStore>> Guidance(
      QueryHandle handle, int top_l,
      const core::PrecomputeOptions& options = core::PrecomputeOptions(),
      RequestStats* stats = nullptr);

  /// Struct form of Guidance(): builds (or reuses) the grid and reports
  /// its serializable shape — over a transport only the metadata travels,
  /// and Retrieve() serves the individual solutions.
  Result<GuidanceResponse> Guidance(const GuidanceRequest& request);

  /// Instant retrieval from a precomputed grid — Session::Retrieve.
  Result<core::Solution> Retrieve(QueryHandle handle, int top_l, int d,
                                  int k, RequestStats* stats = nullptr);

  /// Struct form of Retrieve().
  Result<RetrieveResponse> Retrieve(const RetrieveRequest& request);

  /// Summarize plus both rendered display layers (Figures 1b/1c): the
  /// two-layer view, the collapsed summary, and the expanded member lists
  /// (at most `max_members` tuples per cluster; 0 = all).
  Result<ExploreResult> Explore(QueryHandle handle,
                                const core::Params& params,
                                int max_members = 8);

  /// Struct form of Explore().
  Result<ExploreResponse> Explore(const ExploreRequest& request);

  // --- Per-handle accessors (the typed replacements for session()) ------

  /// The currently published answer set behind a handle, brought fresh
  /// first like every serving op. The shared_ptr pins the set's generation
  /// across refreshes; drop it when done reading.
  Result<std::shared_ptr<const core::AnswerSet>> Answers(QueryHandle handle);

  /// Persists the handle's (k, D) grid for `top_l` to `path`
  /// (core::Session::SaveGuidance), building it first if needed; the file
  /// warm-starts a future session via LoadGuidance.
  Status SaveGuidance(QueryHandle handle, int top_l, const std::string& path);

  /// Cache/generation observability for the session behind a handle.
  /// Deliberately does NOT refresh the handle first: reading counters must
  /// never perturb what they count (e.g. writer_lock_acquisitions).
  Result<core::Session::CacheStats> SessionCacheStats(
      QueryHandle handle) const;

  // --- Background work --------------------------------------------------

  /// Blocks until the background scheduler is idle — no queued or running
  /// warm-start load, refinement, snapshot write, or prefetch task. For
  /// tests and benches that need a quiescent state before asserting; only
  /// meaningful when no concurrent requests are racing.
  void DrainBackgroundWork();

  /// The scheduler's per-lane lifetime counters (submitted / ran /
  /// dropped-superseded), for observability and tests.
  BackgroundScheduler::Counters scheduler_counters() const;

  // --- Aggregate statistics --------------------------------------------

  /// The service-wide counter struct lives in service/api.h so transports
  /// can serialize it; the nested name remains for existing callers.
  using Stats = ServiceStats;
  /// Aggregates the per-thread statistic shards. Exact once the recorded
  /// requests happen-before the read (e.g. after joining the client
  /// threads); a read racing in-flight requests sees a consistent partial
  /// snapshot.
  Stats stats() const;

 private:
  struct SessionEntry {
    std::unique_ptr<core::Session> session;
    // Immutable after construction (safe to read without mu_).
    std::string sql;
    std::string value_column;
    /// The registry cache key (also names this entry's warm-start
    /// snapshot file). Immutable after construction.
    std::string key;
    QueryMode mode = QueryMode::kExactOnly;
    double confidence = 0.0;
    /// True while a background refinement task for this entry is queued
    /// but not yet running — the dedup that keeps one slow exact build
    /// from piling up a task per approximate request. Cleared by the task
    /// *before* it reconciles, so a refresh landing during the exact build
    /// can queue a follow-up refinement rather than being lost.
    std::atomic<bool> refine_queued{false};
    /// Lower-cased table name -> version the current answer set was
    /// executed against (the query's dependency set). Guarded by mu_;
    /// rewritten by the refresh leader.
    std::map<std::string, uint64_t> deps;
    /// The newest catalog version at which this entry's deps were verified
    /// fresh — the staleness fast path: while the catalog version still
    /// equals it, no dataset (of any name) has changed since, so the
    /// per-table dependency walk is skipped entirely. Monotonic;
    /// published (release) after the deps it vouches for.
    std::atomic<uint64_t> fresh_at{0};
    /// In-flight stale-handle refresh concurrent users coalesce onto.
    /// Guarded by mu_.
    std::shared_ptr<FlightLatch> refresh_flight;
    /// Prefetch ledger: speculative builds completed for this entry that
    /// no foreground request has claimed yet, as (level, built-a-grid)
    /// pairs. A foreground warm hit at a covered level consumes one entry
    /// and counts a prefetch_hit. Guarded by prefetch_mu (never taken on
    /// any path unless prefetch is enabled, so the warm path with
    /// prefetch off is untouched).
    std::mutex prefetch_mu;
    std::vector<std::pair<int, bool>> prefetched;
  };

  /// The atomically published session-registry snapshot (RCU, like
  /// core::Session::ReadView): warm Lookup / repeat-Query reads pin it
  /// with one atomic load and never take mu_. Entries are owned by
  /// `owned_` and never destroyed for the service's lifetime; the registry
  /// holds raw pointers. Immutable after publication — Query() leaders
  /// build a successor copy under mu_ and republish.
  struct Registry {
    std::vector<SessionEntry*> entries;          // handle = index
    std::map<std::string, QueryHandle> by_key;   // query key → handle
  };

  /// Per-thread shard of the aggregate statistics. The mutex makes each
  /// shard's fields mutually consistent (latency totals aren't atomic) and
  /// is effectively uncontended: only the owning thread (and the rare
  /// aggregating reader) takes it.
  struct StatShard {
    mutable std::mutex mu;
    Stats stats;
  };

  std::shared_ptr<const Registry> CurrentRegistry() const {
    return std::atomic_load_explicit(&registry_, std::memory_order_acquire);
  }
  /// Caller holds mu_ exclusively (writers serialized).
  void PublishRegistry(std::shared_ptr<const Registry> next) {
    std::atomic_store_explicit(&registry_, std::move(next),
                               std::memory_order_release);
  }

  /// An answer set built from a catalog snapshot, with its provenance.
  struct BuiltAnswers {
    core::AnswerSet answers;
    bool approximate = false;
  };

  /// Entry for a handle, or an error for an unknown one. Lock-free.
  Result<SessionEntry*> Lookup(QueryHandle handle) const;

  /// Executes `sql` against `snapshot` and materializes the answer set.
  /// With `require_exact` false and an approximate mode, runs against the
  /// table's sample and attaches bounds; silently falls back to an exact
  /// build whenever the bounds contract cannot be met (no sample, no
  /// bounded aggregate for `value_column`, empty estimate).
  static Result<BuiltAnswers> BuildAnswers(const std::string& sql,
                                           const std::string& value_column,
                                           QueryMode mode, double confidence,
                                           bool require_exact,
                                           const CatalogSnapshot& snapshot);

  /// Brings a handle up to date before serving from it — the one path
  /// every freshness *and* exactness transition goes through, so they
  /// compose: one atomic catalog-version load on the warm path; a
  /// per-table version walk once the catalog moved; when stale (or when
  /// `require_exact` finds an approximate set published), single-flight
  /// rebuild against a fresh catalog snapshot handed to
  /// core::Session::Refresh. Serializing refreshes and refinements on the
  /// same flight is what makes refinement cancel-or-restart clean: a
  /// refinement always builds from the *newest* snapshot (a refresh that
  /// landed first restarts it implicitly), and one that arrives after an
  /// exact set is already published no-ops. `rs` (optional) gets the
  /// coalesced/refreshed flags; `led_rebuild` (optional) reports whether
  /// this call performed a rebuild itself.
  Status Reconcile(SessionEntry* entry, bool require_exact, RequestStats* rs,
                   bool* led_rebuild = nullptr);

  /// Reconcile for ordinary serving: freshness only, no exactness upgrade.
  Status EnsureFresh(SessionEntry* entry, RequestStats* rs) {
    return Reconcile(entry, /*require_exact=*/false, rs);
  }

  /// Queues a background exact refinement of an approx-first entry
  /// (deduplicated per entry; never blocks the caller). Rides the
  /// scheduler's kRefinement lane with token 0: a refinement is owed
  /// work, never superseded by catalog movement (Reconcile always builds
  /// from the newest snapshot anyway).
  void ScheduleRefinement(SessionEntry* entry);

  /// Enqueues speculative builds for the levels the predictor expects
  /// next, on the kPrefetch lane with the current catalog version as the
  /// validity token (a dataset mutation drops them unrun). `level` is the
  /// observed move's coverage level (ignored for kQuery, which prefetches
  /// the predicted initial levels). No-op unless options_.prefetch.
  void SchedulePrefetch(SessionEntry* entry, study::MoveKind kind, int level);

  /// Consumes a ledger entry covering a foreground warm hit at `level`
  /// (want_store: the request needed a grid, not just a universe) and
  /// counts the prefetch_hit. No-op unless options_.prefetch.
  void CountPrefetchHit(SessionEntry* entry, int level, bool want_store,
                        const RequestStats& rs);

  /// Enqueues the foreground-lane warm-start reload of a cold session's
  /// snapshot. No-op when snapshot_dir is unset.
  void ScheduleWarmStartLoad(SessionEntry* entry);

  /// Enqueues a background snapshot write of the grid serving `top_l`
  /// (atomic write; best-effort). No-op when snapshot_dir is unset.
  void ScheduleSnapshotWrite(SessionEntry* entry, int top_l);

  /// Adds one to a ServiceStats counter in the calling thread's shard.
  void Bump(int64_t ServiceStats::*field);

  /// Copies the published answer set's approximation onto the request
  /// stats (one wait-free answers() load).
  static void StampApproximation(SessionEntry* entry, RequestStats* rs);

  /// Folds one finished request into the calling thread's stat shard.
  enum class RequestKind {
    kQuery,
    kSummarize,
    kGuidance,
    kRetrieve,
    kExplore,
    kRefine
  };
  void Record(RequestKind kind, const RequestStats& stats);

  const ServiceOptions options_;
  DatasetCatalog datasets_;

  /// Guards the registry write side (owned_, republication), per-entry
  /// deps, and the flight maps. Warm reads never touch it. Never held
  /// across SQL execution, session construction, or a flight wait.
  mutable std::shared_mutex mu_;
  /// Owns every SessionEntry ever created (append-only; entries live for
  /// the service's lifetime, so registry raw pointers never dangle).
  std::vector<std::unique_ptr<SessionEntry>> owned_;
  /// The published registry snapshot; access only through CurrentRegistry
  /// / PublishRegistry (C++17 shared_ptr atomic free functions).
  std::shared_ptr<const Registry> registry_;
  // In-flight Query() executions concurrent identical calls wait on.
  // Guarded by mu_.
  std::map<std::string, std::shared_ptr<FlightLatch>> query_flights_;

  mutable Sharded<StatShard> stat_shards_;

  /// The prediction policy behind SchedulePrefetch (stateless, shared).
  ExplorationPredictor predictor_;

  /// The one home for all deferred work: warm-start loads (foreground
  /// lane) > exact refinements (refinement lane) > speculative builds and
  /// snapshot writes (prefetch lane, gated while foreground requests are
  /// in flight, dropped when a catalog mutation supersedes their token).
  /// Declared LAST so it is destroyed FIRST: shutdown quiesces in-flight
  /// tasks (and drops queued ones) while every member they touch is still
  /// alive.
  BackgroundScheduler scheduler_;
};

}  // namespace qagview::service

#endif  // QAGVIEW_SERVICE_QUERY_SERVICE_H_
