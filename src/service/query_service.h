#ifndef QAGVIEW_SERVICE_QUERY_SERVICE_H_
#define QAGVIEW_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sharded_stats.h"
#include "common/single_flight.h"
#include "common/thread_pool.h"
#include "core/explore.h"
#include "core/session.h"
#include "service/catalog.h"

namespace qagview::service {

/// Service-wide knobs, fixed at construction.
struct ServiceOptions {
  /// Worker count handed to every core::Session the service opens (<= 0:
  /// hardware concurrency). Per-call PrecomputeOptions::num_threads still
  /// wins for that call.
  int num_threads = 0;
  /// Reservoir capacity of the per-dataset uniform samples backing
  /// approximate-first serving (DatasetCatalogOptions::sample_capacity).
  /// <= 0 disables sampling: every mode serves exact answers.
  int sample_capacity = 4096;
};

/// How Query() trades answer latency against exactness.
enum class QueryMode {
  /// Always build the exact answer set before responding (the default;
  /// identical to the service's pre-approximation behaviour).
  kExactOnly,
  /// Cold queries respond with a sample-based approximate answer set
  /// immediately; a background exact build then republishes through the
  /// ordinary refresh machinery (two-phase publication). Warm requests see
  /// whichever phase is published.
  kApproxFirst,
  /// Respond approximately and stay approximate until the client
  /// explicitly calls Refine() (the refine trigger).
  kApproxOnly,
};

/// Per-Query() knobs (the mode knob plus its parameters).
struct QueryOptions {
  QueryMode mode = QueryMode::kExactOnly;
  /// Two-sided confidence level of per-answer error bounds in the
  /// approximate modes; must be in (0, 1). Ignored by kExactOnly.
  double confidence = 0.95;
};

/// What one request cost and where its answer came from — returned
/// alongside every response so clients (and the stress harness) can see
/// cache behaviour per call, not just in aggregate.
struct RequestStats {
  double latency_ms = 0.0;
  /// Served from an already-cached structure (session, universe, or grid).
  bool cache_hit = false;
  /// Blocked on another client's identical in-flight work (single-flight
  /// coalescing) instead of duplicating it.
  bool coalesced = false;
  /// This request paid for the build (cache miss, leader).
  bool built = false;
  /// This request found its handle stale (the catalog moved past the
  /// versions the session was built from) and led the refresh: SQL
  /// re-executed against the new snapshot, caches reused or rebuilt by
  /// input fingerprint (core::Session::Refresh).
  bool refreshed = false;
  /// The answer set this request served from was approximate (sample-based
  /// estimates with error bounds); false = exact. Exact-mode responses are
  /// never approximate, by construction.
  bool approximate = false;
  /// Sample fraction (n / N) behind an approximate response; 1.0 if exact.
  double sample_fraction = 1.0;
  /// Largest per-answer confidence-interval half-width in the served
  /// answer set; 0.0 if exact.
  double max_bound = 0.0;
};

/// Opaque reference to a cached query answer set; obtained from Query().
/// The handle itself (and the session behind it) stays valid for the
/// service's lifetime — but the structures reached *through* it follow
/// drain-then-evict semantics: Guidance returns a shared_ptr that pins its
/// answer-set generation, and once a dataset update retires a generation
/// it is destroyed as soon as the last such handle drops. Never store raw
/// pointers extracted from those handles.
using QueryHandle = int64_t;

/// Query() response: the handle plus the answer-set shape.
struct QueryInfo {
  QueryHandle handle = -1;
  int num_answers = 0;  // n — ranked tuples in the answer set
  int num_attrs = 0;    // m — grouping attributes
  RequestStats stats;   // cache_hit = an existing session was reused
  /// Provenance of the published answer set at response time. An
  /// approx-first handle starts with is_exact == false and flips to true
  /// once background refinement republishes the exact generation.
  bool is_exact = true;
  double sample_fraction = 1.0;  // n / N (1.0 when exact)
  double max_bound = 0.0;        // largest per-answer CI half-width
  double confidence = 0.0;       // bound confidence level (0 when exact)
};

/// Explore() response: the solution with both display layers rendered
/// (Figures 1b/1c).
struct ExploreResult {
  core::Solution solution;
  core::TwoLayerView view;
  std::string summary;   // first layer (RenderSummary)
  std::string expanded;  // second layer (RenderExpanded, bounded members)
  RequestStats stats;
};

/// \brief Thread-safe front door to the whole pipeline: datasets → SQL →
/// cached answer sets → shared interactive sessions.
///
/// The paper's prototype is a single-user web app over PostgreSQL
/// (Appendix A.3); QueryService is the multi-client equivalent the ROADMAP
/// asks for. It owns a `DatasetCatalog` of named tables, executes
/// aggregate SQL through `sql::ExecuteSql`, materializes each distinct
/// (sql, value column) pair into one `core::AnswerSet` + `core::Session`,
/// and multiplexes any number of concurrent clients onto those shared
/// sessions:
///
///  * every public method may be called from any thread at any time;
///  * identical concurrent Query() calls coalesce onto one SQL execution
///    and share the resulting session (single-flight, like the session's
///    own universe/grid builds);
///  * Summarize / Guidance / Retrieve / Explore delegate to the
///    thread-safe `core::Session`, so N clients re-parameterizing the same
///    answer set trigger at most one universe build and one grid
///    precompute per distinct shape — everyone else waits and serves from
///    cache;
///  * results are bit-identical to a single-threaded execution of the same
///    requests (sessions and stores are deterministic and immutable once
///    published); only the statistics depend on interleaving.
///
/// **The warm request path is lock-free** (RCU, mirroring core::Session's
/// read path): the session registry is an immutable snapshot behind an
/// atomically published pointer, so Lookup and a warm repeat Query() never
/// take the registry lock; staleness is ruled out by comparing one atomic
/// per-entry freshness version against the atomic catalog version (the
/// per-table dependency walk only runs after a dataset actually changed);
/// and per-request statistics land in per-thread shards
/// (common/sharded_stats.h) aggregated by stats(). A warm
/// Summarize/Guidance/Retrieve/Explore therefore acquires no service- or
/// session-level lock at all — aggregate throughput scales with cores
/// instead of serializing on a mutex.
///
/// **Versioned updates.** Datasets evolve through AppendRows /
/// ReplaceTable, each publishing a new immutable snapshot under the next
/// catalog version. Every cached handle records the table versions its SQL
/// was executed against; on the next use of a stale handle the service
/// transparently re-executes the SQL against the newest snapshot
/// (single-flight — concurrent users of the handle coalesce onto one
/// refresh) and hands the result to `core::Session::Refresh`, which reuses
/// every cache whose input fingerprint is provably unchanged and retires
/// the rest. The refresh invariant, enforced by the differential harness:
/// any sequence of appends and queries yields responses bit-identical to a
/// fresh service built from the final table state.
///
/// **Lifetime (drain-then-evict).** Query handles and their sessions stay
/// valid for the service's lifetime. Structures served through them do
/// not: Guidance returns a `shared_ptr` handle pinning the answer-set
/// generation it belongs to, and a generation retired by a refresh is
/// destroyed as soon as its last external handle drops — in-flight readers
/// drain safely, and memory stays bounded under sustained updates
/// (`Stats::graveyard_size` / `generations_evicted` observe this). Hold
/// the shared_ptr for as long as you read; never store the raw pointer.
class QueryService {
 public:
  explicit QueryService(ServiceOptions options = ServiceOptions());

  // --- Dataset catalog -------------------------------------------------

  /// Takes ownership of `table` as dataset `name` (case-insensitive).
  Status RegisterTable(const std::string& name, storage::Table table);

  /// Loads a CSV file and registers it as dataset `name`.
  Status RegisterCsvFile(const std::string& name, const std::string& path);

  /// Appends rows to dataset `name`, publishing a new immutable snapshot
  /// (existing readers keep theirs). Handles over queries that read the
  /// dataset become stale and refresh transparently on next use. Returns
  /// the new catalog version.
  Result<uint64_t> AppendRows(
      const std::string& name,
      const std::vector<std::vector<storage::Value>>& rows);

  /// Replaces dataset `name` wholesale (schema may change), creating it if
  /// absent; same staleness semantics as AppendRows.
  Result<uint64_t> ReplaceTable(const std::string& name,
                                storage::Table table);

  /// Registered dataset names (lower-cased, sorted).
  std::vector<std::string> dataset_names() const;

  /// Current catalog version (bumps on every dataset mutation).
  uint64_t catalog_version() const;

  // --- Query → shared session ------------------------------------------

  /// Executes an aggregate query and opens (or reuses) the session over
  /// its ranked answers. `value_column` names the aggregate output column
  /// (the ranking value). Two calls with byte-identical SQL (modulo
  /// surrounding whitespace), value column, and query options share one
  /// session; identical concurrent calls run the SQL once.
  Result<QueryInfo> Query(const std::string& sql,
                          const std::string& value_column);

  /// Query with a mode knob: kExactOnly behaves exactly like the overload
  /// above; the approximate modes answer cold queries from the dataset's
  /// uniform sample (estimates with per-answer bounds at
  /// `options.confidence`) and, for kApproxFirst, schedule a background
  /// exact build that republishes without ever blocking a foreground
  /// request. When no useful sample exists (sampling disabled, tiny table,
  /// or no bounded aggregate), the response is exact and marked so.
  Result<QueryInfo> Query(const std::string& sql,
                          const std::string& value_column,
                          const QueryOptions& options);

  /// The refine trigger: synchronously upgrades the handle's answer set to
  /// exact (and fresh), coalescing with any in-flight refresh or background
  /// refinement of the same handle. No-op on an already-exact handle. The
  /// published exact generation is bit-identical to a cold exact rebuild
  /// from the same snapshot.
  Status Refine(QueryHandle handle, RequestStats* stats = nullptr);

  // --- Interactive ops on a handle -------------------------------------

  /// One-off summarization under (k, L, D) — Session::Summarize.
  Result<core::Solution> Summarize(QueryHandle handle,
                                   const core::Params& params,
                                   RequestStats* stats = nullptr);

  /// Ensures the (k, D) grid serving `top_l` exists — Session::Guidance.
  /// The returned handle pins the store (and its whole answer-set
  /// generation) across dataset refreshes; drop it when done reading so a
  /// superseded generation can be evicted.
  Result<std::shared_ptr<const core::SolutionStore>> Guidance(
      QueryHandle handle, int top_l,
      const core::PrecomputeOptions& options = core::PrecomputeOptions(),
      RequestStats* stats = nullptr);

  /// Instant retrieval from a precomputed grid — Session::Retrieve.
  Result<core::Solution> Retrieve(QueryHandle handle, int top_l, int d,
                                  int k, RequestStats* stats = nullptr);

  /// Summarize plus both rendered display layers (Figures 1b/1c): the
  /// two-layer view, the collapsed summary, and the expanded member lists
  /// (at most `max_members` tuples per cluster; 0 = all).
  Result<ExploreResult> Explore(QueryHandle handle,
                                const core::Params& params,
                                int max_members = 8);

  /// The shared session behind a handle (e.g. for Save/LoadGuidance or
  /// CacheStats); owned by the service, itself fully thread-safe. Like
  /// every other per-handle op, refreshes the handle first if the catalog
  /// has moved past the versions it was built from.
  Result<core::Session*> session(QueryHandle handle);

  // --- Aggregate statistics --------------------------------------------

  /// Monotonic service-wide counters (a superset of what each RequestStats
  /// reported): request mix, cache behaviour, and latency totals.
  struct Stats {
    int64_t datasets = 0;
    int64_t sessions = 0;           // distinct cached (sql, value) pairs
    int64_t queries = 0;            // Query() calls
    int64_t query_cache_hits = 0;   // ... served an existing session
    int64_t query_coalesced = 0;    // ... waited on an identical in-flight
    int64_t summarize_requests = 0;
    int64_t guidance_requests = 0;
    int64_t retrieve_requests = 0;
    int64_t explore_requests = 0;
    int64_t cache_hits = 0;       // per-request traces, summed
    int64_t coalesced_waits = 0;  // per-request traces, summed
    int64_t builds = 0;           // per-request traces, summed
    /// Stale-handle refreshes led (SQL re-executions after catalog moved),
    /// and the subset that proved the answer set unchanged and reused
    /// every session cache.
    int64_t refreshes = 0;
    int64_t refresh_full_reuses = 0;
    /// Query() calls answered with an approximate (sample-based) set, and
    /// non-query ops (Summarize/Guidance/Retrieve/Explore) that served
    /// from one.
    int64_t approx_queries = 0;
    int64_t approx_served = 0;
    /// Refine() calls plus background refinement tasks.
    int64_t refine_requests = 0;
    /// Exact builds that upgraded an approximate generation, and
    /// refinement tasks that found the upgrade already done (another
    /// trigger led it, or a refresh landed exact first).
    int64_t refinements = 0;
    int64_t refinements_superseded = 0;
    /// Generation lifetime across all sessions (core::Session::CacheStats
    /// summed at read time): retired generations still pinned by external
    /// handles, generations currently alive (graveyard + one live per
    /// session), and retired generations whose readers drained and whose
    /// memory was reclaimed.
    int64_t graveyard_size = 0;
    int64_t live_generations = 0;
    int64_t generations_evicted = 0;
    double total_latency_ms = 0.0;
    double max_latency_ms = 0.0;
    int64_t requests() const {
      return queries + summarize_requests + guidance_requests +
             retrieve_requests + explore_requests + refine_requests;
    }
  };
  /// Aggregates the per-thread statistic shards. Exact once the recorded
  /// requests happen-before the read (e.g. after joining the client
  /// threads); a read racing in-flight requests sees a consistent partial
  /// snapshot.
  Stats stats() const;

 private:
  struct SessionEntry {
    std::unique_ptr<core::Session> session;
    // Immutable after construction (safe to read without mu_).
    std::string sql;
    std::string value_column;
    QueryMode mode = QueryMode::kExactOnly;
    double confidence = 0.0;
    /// True while a background refinement task for this entry is queued
    /// but not yet running — the dedup that keeps one slow exact build
    /// from piling up a task per approximate request. Cleared by the task
    /// *before* it reconciles, so a refresh landing during the exact build
    /// can queue a follow-up refinement rather than being lost.
    std::atomic<bool> refine_queued{false};
    /// Lower-cased table name -> version the current answer set was
    /// executed against (the query's dependency set). Guarded by mu_;
    /// rewritten by the refresh leader.
    std::map<std::string, uint64_t> deps;
    /// The newest catalog version at which this entry's deps were verified
    /// fresh — the staleness fast path: while the catalog version still
    /// equals it, no dataset (of any name) has changed since, so the
    /// per-table dependency walk is skipped entirely. Monotonic;
    /// published (release) after the deps it vouches for.
    std::atomic<uint64_t> fresh_at{0};
    /// In-flight stale-handle refresh concurrent users coalesce onto.
    /// Guarded by mu_.
    std::shared_ptr<FlightLatch> refresh_flight;
  };

  /// The atomically published session-registry snapshot (RCU, like
  /// core::Session::ReadView): warm Lookup / repeat-Query reads pin it
  /// with one atomic load and never take mu_. Entries are owned by
  /// `owned_` and never destroyed for the service's lifetime; the registry
  /// holds raw pointers. Immutable after publication — Query() leaders
  /// build a successor copy under mu_ and republish.
  struct Registry {
    std::vector<SessionEntry*> entries;          // handle = index
    std::map<std::string, QueryHandle> by_key;   // query key → handle
  };

  /// Per-thread shard of the aggregate statistics. The mutex makes each
  /// shard's fields mutually consistent (latency totals aren't atomic) and
  /// is effectively uncontended: only the owning thread (and the rare
  /// aggregating reader) takes it.
  struct StatShard {
    mutable std::mutex mu;
    Stats stats;
  };

  std::shared_ptr<const Registry> CurrentRegistry() const {
    return std::atomic_load_explicit(&registry_, std::memory_order_acquire);
  }
  /// Caller holds mu_ exclusively (writers serialized).
  void PublishRegistry(std::shared_ptr<const Registry> next) {
    std::atomic_store_explicit(&registry_, std::move(next),
                               std::memory_order_release);
  }

  /// An answer set built from a catalog snapshot, with its provenance.
  struct BuiltAnswers {
    core::AnswerSet answers;
    bool approximate = false;
  };

  /// Entry for a handle, or an error for an unknown one. Lock-free.
  Result<SessionEntry*> Lookup(QueryHandle handle) const;

  /// Executes `sql` against `snapshot` and materializes the answer set.
  /// With `require_exact` false and an approximate mode, runs against the
  /// table's sample and attaches bounds; silently falls back to an exact
  /// build whenever the bounds contract cannot be met (no sample, no
  /// bounded aggregate for `value_column`, empty estimate).
  static Result<BuiltAnswers> BuildAnswers(const std::string& sql,
                                           const std::string& value_column,
                                           QueryMode mode, double confidence,
                                           bool require_exact,
                                           const CatalogSnapshot& snapshot);

  /// Brings a handle up to date before serving from it — the one path
  /// every freshness *and* exactness transition goes through, so they
  /// compose: one atomic catalog-version load on the warm path; a
  /// per-table version walk once the catalog moved; when stale (or when
  /// `require_exact` finds an approximate set published), single-flight
  /// rebuild against a fresh catalog snapshot handed to
  /// core::Session::Refresh. Serializing refreshes and refinements on the
  /// same flight is what makes refinement cancel-or-restart clean: a
  /// refinement always builds from the *newest* snapshot (a refresh that
  /// landed first restarts it implicitly), and one that arrives after an
  /// exact set is already published no-ops. `rs` (optional) gets the
  /// coalesced/refreshed flags; `led_rebuild` (optional) reports whether
  /// this call performed a rebuild itself.
  Status Reconcile(SessionEntry* entry, bool require_exact, RequestStats* rs,
                   bool* led_rebuild = nullptr);

  /// Reconcile for ordinary serving: freshness only, no exactness upgrade.
  Status EnsureFresh(SessionEntry* entry, RequestStats* rs) {
    return Reconcile(entry, /*require_exact=*/false, rs);
  }

  /// Queues a background exact refinement of an approx-first entry
  /// (deduplicated per entry; never blocks the caller).
  void ScheduleRefinement(SessionEntry* entry);

  /// Copies the published answer set's approximation onto the request
  /// stats (one wait-free answers() load).
  static void StampApproximation(SessionEntry* entry, RequestStats* rs);

  /// Folds one finished request into the calling thread's stat shard.
  enum class RequestKind {
    kQuery,
    kSummarize,
    kGuidance,
    kRetrieve,
    kExplore,
    kRefine
  };
  void Record(RequestKind kind, const RequestStats& stats);

  const ServiceOptions options_;
  DatasetCatalog datasets_;

  /// Guards the registry write side (owned_, republication), per-entry
  /// deps, and the flight maps. Warm reads never touch it. Never held
  /// across SQL execution, session construction, or a flight wait.
  mutable std::shared_mutex mu_;
  /// Owns every SessionEntry ever created (append-only; entries live for
  /// the service's lifetime, so registry raw pointers never dangle).
  std::vector<std::unique_ptr<SessionEntry>> owned_;
  /// The published registry snapshot; access only through CurrentRegistry
  /// / PublishRegistry (C++17 shared_ptr atomic free functions).
  std::shared_ptr<const Registry> registry_;
  // In-flight Query() executions concurrent identical calls wait on.
  // Guarded by mu_.
  std::map<std::string, std::shared_ptr<FlightLatch>> query_flights_;

  mutable Sharded<StatShard> stat_shards_;

  /// Runs background exact refinements. Declared LAST so it is destroyed
  /// FIRST: shutdown quiesces in-flight refinement tasks (and drops queued
  /// ones) while every member they touch is still alive.
  BackgroundExecutor refine_pool_{1};
};

}  // namespace qagview::service

#endif  // QAGVIEW_SERVICE_QUERY_SERVICE_H_
