#include "service/warm_start.h"

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace qagview::service {

namespace {

constexpr int kFormatVersion = 1;
constexpr const char* kMagic = "qagview-snap";
/// Ceiling on the serialized-store payload (64 MiB). A header promising
/// more than this is damage or forgery, not a real grid.
constexpr uint64_t kMaxPayloadBytes = 64ull << 20;

std::string Hex64(uint64_t v) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(v));
  return buffer;
}

Result<uint64_t> ParseHex64(const std::string& text) {
  if (text.empty() || text.size() > 16) {
    return Status::InvalidArgument(StrCat("bad hex field '", text, "'"));
  }
  uint64_t out = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return Status::InvalidArgument(StrCat("bad hex field '", text, "'"));
    }
    out = (out << 4) | static_cast<uint64_t>(digit);
  }
  return out;
}

Result<int> ParseBoundedInt(const std::string& text, const char* what,
                            int64_t lo, int64_t hi) {
  QAG_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
  if (v < lo || v > hi) {
    return Status::InvalidArgument(
        StrCat("snapshot ", what, " = ", v, " outside [", lo, ", ", hi, "]"));
  }
  return static_cast<int>(v);
}

}  // namespace

uint64_t WarmStartChecksum(const std::string& data) {
  // FNV-1a, 64-bit.
  uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string WarmStartFileName(const std::string& session_key) {
  return StrCat(Hex64(WarmStartChecksum(session_key)), ".qsnap");
}

Status WriteWarmStartSnapshot(const std::string& path,
                              const WarmStartSnapshot& snapshot) {
  std::string out = StrCat(
      kMagic, " ", kFormatVersion, " ", Hex64(snapshot.catalog_version), " ",
      Hex64(snapshot.content_fingerprint), " ",
      Hex64(snapshot.domain_fingerprint), " ", snapshot.num_answers, " ",
      snapshot.num_attrs, " ", snapshot.store_l, " ", snapshot.payload.size(),
      " ", Hex64(WarmStartChecksum(snapshot.payload)), "\n");
  out += snapshot.payload;
  const std::string tmp = StrCat(path, ".tmp");
  {
    std::ofstream file(tmp, std::ios::trunc | std::ios::binary);
    if (!file) {
      return Status::NotFound(StrCat("cannot open ", tmp, " for writing"));
    }
    file << out;
    file.flush();
    if (!file) return Status::Internal(StrCat("write to ", tmp, " failed"));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal(
        StrCat("rename ", tmp, " -> ", path, " failed: errno ", errno));
  }
  return Status::OK();
}

Result<WarmStartSnapshot> ReadWarmStartSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(StrCat("cannot open ", path));
  std::string header;
  if (!std::getline(in, header)) {
    return Status::InvalidArgument(StrCat(path, ": empty snapshot file"));
  }
  std::vector<std::string> fields = Split(header, ' ');
  if (fields.size() != 10 || fields[0] != kMagic) {
    return Status::InvalidArgument(
        StrCat(path, ": bad header (expected '", kMagic, " <version> ...')"));
  }
  QAG_ASSIGN_OR_RETURN(int64_t version, ParseInt64(fields[1]));
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        StrCat(path, ": unsupported snapshot version ", version));
  }
  WarmStartSnapshot out;
  QAG_ASSIGN_OR_RETURN(out.catalog_version, ParseHex64(fields[2]));
  QAG_ASSIGN_OR_RETURN(out.content_fingerprint, ParseHex64(fields[3]));
  QAG_ASSIGN_OR_RETURN(out.domain_fingerprint, ParseHex64(fields[4]));
  QAG_ASSIGN_OR_RETURN(
      out.num_answers,
      ParseBoundedInt(fields[5], "num_answers", 1, 1 << 30));
  QAG_ASSIGN_OR_RETURN(out.num_attrs,
                       ParseBoundedInt(fields[6], "num_attrs", 1, 1 << 20));
  QAG_ASSIGN_OR_RETURN(out.store_l,
                       ParseBoundedInt(fields[7], "store_l", 1, 1 << 30));
  QAG_ASSIGN_OR_RETURN(int64_t payload_bytes, ParseInt64(fields[8]));
  if (payload_bytes < 0 ||
      static_cast<uint64_t>(payload_bytes) > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        StrCat(path, ": implausible payload size ", payload_bytes));
  }
  QAG_ASSIGN_OR_RETURN(uint64_t checksum, ParseHex64(fields[9]));
  // Exactly payload_bytes must remain: short reads are truncation, extra
  // trailing bytes are damage (the writer emits nothing after the payload).
  std::ostringstream rest;
  rest << in.rdbuf();
  out.payload = rest.str();
  if (static_cast<int64_t>(out.payload.size()) != payload_bytes) {
    return Status::InvalidArgument(
        StrCat(path, ": payload is ", out.payload.size(),
               " bytes, header promised ", payload_bytes));
  }
  if (WarmStartChecksum(out.payload) != checksum) {
    return Status::InvalidArgument(
        StrCat(path, ": payload checksum mismatch (corrupt snapshot)"));
  }
  return out;
}

}  // namespace qagview::service
