#ifndef QAGVIEW_SERVICE_WARM_START_H_
#define QAGVIEW_SERVICE_WARM_START_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace qagview::service {

/// \file
/// \brief Persistent warm-start snapshots: the on-disk envelope around a
/// serialized guidance grid (core/solution_store_io.h payload), keyed by
/// the catalog version and the answer set's input fingerprints.
///
/// The envelope exists so a later process can decide *whether the file is
/// even worth parsing* — and detect damage — before any core state is
/// touched. Validation is layered, and every layer degrades to a cold
/// build, never a wrong answer:
///
///  1. ReadWarmStartSnapshot checks the envelope: magic, format version,
///     exact payload byte count, and an FNV-1a checksum over the payload
///     (truncation and bit flips fail here with a clean Status).
///  2. core::Session::LoadGuidanceSnapshot checks identity: the recorded
///     content/domain fingerprints and answer-set shape must match the
///     currently published set (a snapshot from older data fails here).
///  3. The store deserializer re-resolves every cluster pattern against
///     the freshly built universe (the final, exact integrity check).
///
/// Format (one file, text):
///   qagview-snap 1 <catalog_version> <content_fp> <domain_fp> <n> <m>
///       <store_l> <payload_bytes> <payload_fnv64>   (one line, hex fps)
///   <payload: the qagview-store serialization, exactly payload_bytes>
struct WarmStartSnapshot {
  /// Catalog version the grid was built under (provenance half of the
  /// key; the fingerprints are authoritative for validity — a version
  /// bump that provably did not change the answer set still warm-starts).
  uint64_t catalog_version = 0;
  uint64_t content_fingerprint = 0;
  uint64_t domain_fingerprint = 0;
  int num_answers = 0;
  int num_attrs = 0;
  /// The L the stored grid was built for.
  int store_l = 0;
  /// The serialized solution store (solution_store_io format).
  std::string payload;
};

/// 64-bit FNV-1a over `data` — the payload checksum.
uint64_t WarmStartChecksum(const std::string& data);

/// The snapshot file name for a session cache key (a stable hash rendered
/// as hex, so arbitrary SQL text never reaches the filesystem).
std::string WarmStartFileName(const std::string& session_key);

/// Writes atomically (temp file + rename): a crash mid-write leaves either
/// the old snapshot or none, never a torn file a reader could see.
Status WriteWarmStartSnapshot(const std::string& path,
                              const WarmStartSnapshot& snapshot);

/// Reads and envelope-validates a snapshot. Any damage — missing file,
/// bad magic/version, short or long payload, checksum mismatch, absurd
/// header fields — returns a clean Status; never crashes, never returns a
/// partially filled snapshot.
Result<WarmStartSnapshot> ReadWarmStartSnapshot(const std::string& path);

}  // namespace qagview::service

#endif  // QAGVIEW_SERVICE_WARM_START_H_
