#ifndef QAGVIEW_CORE_INTERVAL_TREE_H_
#define QAGVIEW_CORE_INTERVAL_TREE_H_

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace qagview::core {

/// \brief Static centered interval tree over closed integer intervals
/// [lo, hi] with payloads; supports O(log n + |answer|) stabbing queries.
///
/// This is the retrieval structure of §6.2: the solution store keeps, per
/// distance value D, one tree whose intervals are the k-ranges in which
/// each cluster belongs to the solution (Proposition 6.1 guarantees those
/// ranges are contiguous).
template <typename Payload>
class IntervalTree {
 public:
  struct Entry {
    int lo;
    int hi;
    Payload payload;
  };

  IntervalTree() = default;

  explicit IntervalTree(std::vector<Entry> entries)
      : entries_(std::move(entries)) {
    std::vector<int> idx;
    idx.reserve(entries_.size());
    for (size_t i = 0; i < entries_.size(); ++i) {
      QAG_DCHECK(entries_[i].lo <= entries_[i].hi);
      idx.push_back(static_cast<int>(i));
    }
    if (!idx.empty()) root_ = BuildNode(std::move(idx));
  }

  size_t size() const { return entries_.size(); }

  /// All stored intervals, in construction order (serialization and tests).
  const std::vector<Entry>& entries() const { return entries_; }

  /// Invokes `fn(const Entry&)` for every interval containing `point`.
  template <typename Fn>
  void Stab(int point, Fn&& fn) const {
    StabNode(root_, point, fn);
  }

  /// Collects the payloads of every interval containing `point`.
  std::vector<Payload> Collect(int point) const {
    std::vector<Payload> out;
    Stab(point, [&out](const Entry& e) { out.push_back(e.payload); });
    return out;
  }

 private:
  struct Node {
    int center = 0;
    std::vector<int> by_lo;  // overlapping entries, ascending lo
    std::vector<int> by_hi;  // same entries, descending hi
    int left = -1;
    int right = -1;
  };

  int BuildNode(std::vector<int> idx) {
    // Median of interval midpoints keeps the tree balanced enough.
    std::vector<int> mids;
    mids.reserve(idx.size());
    for (int i : idx) {
      mids.push_back(entries_[static_cast<size_t>(i)].lo +
                     (entries_[static_cast<size_t>(i)].hi -
                      entries_[static_cast<size_t>(i)].lo) /
                         2);
    }
    std::nth_element(mids.begin(), mids.begin() + mids.size() / 2,
                     mids.end());
    int center = mids[mids.size() / 2];

    Node node;
    node.center = center;
    std::vector<int> left_idx;
    std::vector<int> right_idx;
    for (int i : idx) {
      const Entry& e = entries_[static_cast<size_t>(i)];
      if (e.hi < center) {
        left_idx.push_back(i);
      } else if (e.lo > center) {
        right_idx.push_back(i);
      } else {
        node.by_lo.push_back(i);
      }
    }
    node.by_hi = node.by_lo;
    std::sort(node.by_lo.begin(), node.by_lo.end(), [this](int a, int b) {
      return entries_[static_cast<size_t>(a)].lo <
             entries_[static_cast<size_t>(b)].lo;
    });
    std::sort(node.by_hi.begin(), node.by_hi.end(), [this](int a, int b) {
      return entries_[static_cast<size_t>(a)].hi >
             entries_[static_cast<size_t>(b)].hi;
    });

    int node_index = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(node));
    // Degenerate splits cannot happen: strictly-left/right children exclude
    // everything overlapping the center, and at least one entry overlaps it.
    if (!left_idx.empty()) {
      int child = BuildNode(std::move(left_idx));
      nodes_[static_cast<size_t>(node_index)].left = child;
    }
    if (!right_idx.empty()) {
      int child = BuildNode(std::move(right_idx));
      nodes_[static_cast<size_t>(node_index)].right = child;
    }
    return node_index;
  }

  template <typename Fn>
  void StabNode(int node_index, int point, Fn&& fn) const {
    if (node_index < 0) return;
    const Node& node = nodes_[static_cast<size_t>(node_index)];
    if (point < node.center) {
      for (int i : node.by_lo) {
        const Entry& e = entries_[static_cast<size_t>(i)];
        if (e.lo > point) break;
        fn(e);
      }
      StabNode(node.left, point, fn);
    } else if (point > node.center) {
      for (int i : node.by_hi) {
        const Entry& e = entries_[static_cast<size_t>(i)];
        if (e.hi < point) break;
        fn(e);
      }
      StabNode(node.right, point, fn);
    } else {
      for (int i : node.by_lo) fn(entries_[static_cast<size_t>(i)]);
    }
  }

  std::vector<Entry> entries_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_INTERVAL_TREE_H_
