#ifndef QAGVIEW_CORE_BOTTOM_UP_H_
#define QAGVIEW_CORE_BOTTOM_UP_H_

#include <vector>

#include "common/result.h"
#include "core/solution.h"

namespace qagview::core {

struct BottomUpOptions {
  /// §6.3 delta-judgment optimization (disable for the Fig-8b ablation).
  bool use_delta_judgment = true;

  /// Where the merge process starts (§5.1 variants).
  enum class Start {
    /// The L top elements as singleton clusters (the basic algorithm).
    kTopLSingletons,
    /// Variant (i): level-(D-1) ancestors of the top-L elements.
    kLevelDMinus1,
  };
  Start start = Start::kTopLSingletons;

  /// How UpdateSolution scores a candidate merge (§5.1 variants plus the
  /// footnote-5 alternative objective).
  enum class MergeRule {
    /// avg of the whole solution after the merge (the basic algorithm,
    /// Max-Avg).
    kSolutionAverage,
    /// Variant (ii): avg(LCA(C1, C2)) of the merged cluster alone.
    kLcaAverage,
    /// Min-Size (footnote 5): fewest redundant (non-top-L) elements added,
    /// solution average as the tie-breaker.
    kMinRedundant,
    /// Max-Min (§9 "objective functions other than average"): maximize the
    /// minimum covered value after the merge, solution average as the
    /// tie-breaker. Guards the worst covered tuple instead of the mean.
    kMaxMin,
  };
  MergeRule merge_rule = MergeRule::kSolutionAverage;
};

/// \brief The Bottom-Up greedy algorithm (Algorithm 1).
///
/// Starts from the top-L singletons; phase 1 greedily merges pairs at
/// distance < D until the distance constraint holds, phase 2 merges
/// arbitrary pairs until at most k clusters remain. Each merge replaces a
/// pair with its LCA (dropping any other subsumed cluster), chosen to
/// maximize the resulting solution average. The coverage, incomparability,
/// and distance-monotonicity invariants of §5.1 hold throughout, so the
/// result is always feasible.
class BottomUp {
 public:
  /// Runs the full algorithm for the given parameters.
  static Result<Solution> Run(const ClusterUniverse& universe,
                              const Params& params,
                              const BottomUpOptions& options = {});

  /// Runs the two merge phases starting from the given antichain of
  /// clusters (used by Hybrid and by the precomputation layer). `initial`
  /// must cover the top-L elements.
  static Result<Solution> RunFrom(const ClusterUniverse& universe,
                                  const Params& params,
                                  const std::vector<int>& initial,
                                  const BottomUpOptions& options = {});
};

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_BOTTOM_UP_H_
