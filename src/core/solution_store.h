#ifndef QAGVIEW_CORE_SOLUTION_STORE_H_
#define QAGVIEW_CORE_SOLUTION_STORE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "core/interval_tree.h"
#include "core/solution.h"

namespace qagview::core {

/// \brief Space-efficient storage of precomputed solutions for all (k, D)
/// combinations at a fixed L (§6.2).
///
/// Instead of one cluster list per (k, D) — O(N_k × N_D) lists with heavy
/// overlap — the store keeps one interval tree per D: by Proposition 6.1
/// (continuity), once a cluster is merged away during the k-descending
/// Bottom-Up replay it never returns, so the set of k values for which a
/// cluster is in the solution is one contiguous interval. Retrieval is a
/// stabbing query at k.
class SolutionStore {
 public:
  /// Per-D replay trace handed over by the precompute layer: the solution
  /// state after each merge round, largest size first.
  struct Trace {
    int d = 0;
    /// states[r] = cluster ids after round r (strictly decreasing sizes).
    std::vector<std::vector<int>> states;
    /// avg(O) of each state.
    std::vector<double> values;
  };

  /// Builds interval trees from replay traces. `k_max` caps the stored k
  /// range (queries above it return the first state). The universe must
  /// outlive the store.
  SolutionStore(const ClusterUniverse* universe, int l, int k_max,
                std::vector<Trace> traces);

  /// One stored (cluster, k-interval) record (inspection/serialization).
  struct IntervalRecord {
    int lo = 0;
    int hi = 0;
    int cluster_id = -1;
  };

  /// Reconstructed per-D innards, as produced by Intervals()/SizeValues()
  /// or a deserializer.
  struct PartsPerD {
    int d = 0;
    /// (solution size, avg value) per replay state, sizes strictly
    /// decreasing.
    std::vector<std::pair<int, double>> size_value;
    std::vector<IntervalRecord> intervals;
  };

  /// Rebuilds a store from previously extracted parts (the deserialization
  /// path); validates size monotonicity and interval sanity.
  static Result<SolutionStore> FromParts(const ClusterUniverse* universe,
                                         int l, int k_max,
                                         std::vector<PartsPerD> parts);

  /// The (size, value) ladder of the replay for a given D.
  Result<std::vector<std::pair<int, double>>> SizeValues(int d) const;

  /// The stored intervals for a given D (order unspecified).
  Result<std::vector<IntervalRecord>> Intervals(int d) const;

  int l() const { return l_; }
  int k_max() const { return k_max_; }
  /// The universe this store's cluster ids index into — the store's
  /// transitive input. The session's cache-admission check compares its
  /// answer-set identity.
  const ClusterUniverse* universe() const { return universe_; }
  /// Content fingerprint of the answer set behind the universe this store
  /// was built (or deserialized) against, recorded for refresh
  /// observability (the authoritative staleness test is answer-set
  /// identity via universe()).
  uint64_t input_fingerprint() const {
    return universe_->input_fingerprint();
  }
  /// Attribute count of the underlying answer set (serialization header).
  int num_attrs() const;
  /// The pattern of a stored cluster id (serialization renders patterns,
  /// which are stable across universe rebuilds, instead of raw ids).
  const std::vector<int32_t>& ClusterPattern(int cluster_id) const;
  /// Smallest k with a stored solution for the given D.
  Result<int> MinK(int d) const;
  std::vector<int> d_values() const;

  /// The precomputed solution for (k, D): an interval-tree stabbing query
  /// plus objective-stat reconstruction. k above k_max is clamped; k below
  /// the smallest stored size is an error.
  Result<Solution> Retrieve(int d, int k) const;

  /// Objective value avg(O) for (k, D) without materializing the solution.
  Result<double> Value(int d, int k) const;

  /// Total number of stored (cluster, k-interval) entries (space metric;
  /// compare against storing full per-(k,D) cluster lists).
  int64_t num_intervals() const { return num_intervals_; }
  /// Sum over (k, D) of solution sizes if stored naively (for comparison).
  int64_t naive_entries() const { return naive_entries_; }

 private:
  SolutionStore() = default;

  struct PerD {
    IntervalTree<int> tree;  // payload: cluster id
    /// (size, value) per state, sizes strictly decreasing.
    std::vector<std::pair<int, double>> size_value;
    int min_size = 0;
  };

  Result<const PerD*> FindD(int d) const;

  const ClusterUniverse* universe_;
  int l_;
  int k_max_;
  std::map<int, PerD> per_d_;
  int64_t num_intervals_ = 0;
  int64_t naive_entries_ = 0;
};

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_SOLUTION_STORE_H_
