#include "core/session.h"

#include <algorithm>

#include "common/string_util.h"
#include "core/solution_store_io.h"

namespace qagview::core {

namespace {

/// Whether a cached store can serve a Guidance request with these options:
/// every requested D row present, the k range at least as wide on both
/// ends. (Mirrors the Precompute::Run defaults for empty/zero fields.)
bool StoreCoversOptions(const SolutionStore& store, const AnswerSet& s,
                        const PrecomputeOptions& options) {
  int k_max = options.k_max;
  if (k_max <= 0) k_max = std::max(options.k_min, 20);
  if (store.k_max() < k_max) return false;
  std::vector<int> want = options.d_values;
  if (want.empty()) {
    for (int d = 1; d <= s.num_attrs(); ++d) want.push_back(d);
  }
  std::vector<int> have = store.d_values();  // ascending (map keys)
  for (int d : want) {
    if (!std::binary_search(have.begin(), have.end(), d)) return false;
    // A fresh build merges down to max(k_min, 1); the cached row must
    // reach at least as low.
    if (store.MinK(d).value() > std::max(options.k_min, 1)) return false;
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<Session>> Session::Create(AnswerSet answers) {
  return std::unique_ptr<Session>(
      new Session(std::make_unique<AnswerSet>(std::move(answers))));
}

Result<std::unique_ptr<Session>> Session::FromTable(
    const storage::Table& table, const std::string& value_column) {
  QAG_ASSIGN_OR_RETURN(AnswerSet answers,
                       AnswerSet::FromTable(table, value_column));
  return Create(std::move(answers));
}

Result<const ClusterUniverse*> Session::UniverseFor(int top_l) {
  if (top_l < 1 || top_l > answers_->size()) {
    return Status::InvalidArgument("L out of range for this session");
  }
  // Narrowest cached universe with top_l' >= top_l serves the request (its
  // cluster set is a superset and all algorithms accept params.L <= top_l').
  auto it = universes_.lower_bound(top_l);
  if (it != universes_.end()) {
    ++universe_hits_;
    return it->second.get();
  }
  ++universe_misses_;
  ClusterUniverse::Options build_options;
  build_options.num_threads = num_threads_;
  QAG_ASSIGN_OR_RETURN(
      ClusterUniverse u,
      ClusterUniverse::Build(answers_.get(), top_l, build_options));
  auto owned = std::make_unique<ClusterUniverse>(std::move(u));
  const ClusterUniverse* ptr = owned.get();
  universes_.emplace(top_l, std::move(owned));
  return ptr;
}

Result<Solution> Session::Summarize(const Params& params,
                                    const HybridOptions& options) {
  QAG_RETURN_IF_ERROR(ValidateParams(*answers_, params));
  QAG_ASSIGN_OR_RETURN(const ClusterUniverse* universe,
                       UniverseFor(params.L));
  return Hybrid::Run(*universe, params, options);
}

const SolutionStore* Session::StoreFor(int top_l) const {
  // Mirror of the universe cache policy: the narrowest cached grid with
  // L' >= top_l serves the request (its replays cover the top-L' >= top-L
  // elements, and every stored (k, D) solution remains valid for the
  // narrower coverage request by Proposition 6.1).
  auto it = stores_.lower_bound(top_l);
  if (it == stores_.end()) {
    ++store_misses_;
    return nullptr;
  }
  ++store_hits_;
  return it->second.get();
}

Result<const SolutionStore*> Session::Guidance(
    int top_l, const PrecomputeOptions& options) {
  // Serve the narrowest cached grid with L' >= top_l — but only when it
  // actually covers the requested (k, D) ranges; a wider-L store built
  // with a narrower grid must not shadow a request for rows it lacks.
  for (auto it = stores_.lower_bound(top_l); it != stores_.end(); ++it) {
    if (StoreCoversOptions(*it->second, *answers_, options)) {
      ++store_hits_;
      return it->second.get();
    }
  }
  ++store_misses_;
  QAG_ASSIGN_OR_RETURN(const ClusterUniverse* universe, UniverseFor(top_l));
  PrecomputeOptions run_options = options;
  if (run_options.num_threads <= 0) run_options.num_threads = num_threads_;
  QAG_ASSIGN_OR_RETURN(SolutionStore store,
                       Precompute::Run(*universe, top_l, run_options));
  auto owned = std::make_unique<SolutionStore>(std::move(store));
  const SolutionStore* ptr = owned.get();
  // emplace, never replace: a narrower-grid store at this L may exist and
  // keeps serving the requests it covers (and pointers previously handed
  // out must stay valid).
  stores_.emplace(top_l, std::move(owned));
  return ptr;
}

Result<Solution> Session::Retrieve(int top_l, int d, int k) {
  // Narrowest store with L' >= top_l that can answer (d, k); a narrower-
  // grid store is skipped if a wider cached one has the row.
  Status first_error = Status::OK();
  bool found_store = false;
  for (auto it = stores_.lower_bound(top_l); it != stores_.end(); ++it) {
    found_store = true;
    Result<Solution> solution = it->second->Retrieve(d, k);
    if (solution.ok()) {
      ++store_hits_;
      return solution;
    }
    if (first_error.ok()) first_error = solution.status();
  }
  ++store_misses_;
  if (!found_store) {
    return Status::FailedPrecondition(
        "no guidance precomputed covering this L; call Guidance() first");
  }
  return first_error;
}

Status Session::SaveGuidance(int top_l, const std::string& path) const {
  const SolutionStore* store = StoreFor(top_l);
  if (store == nullptr) {
    return Status::FailedPrecondition(
        "no guidance precomputed covering this L; call Guidance() first");
  }
  return SaveSolutionStore(*store, path);
}

Status Session::LoadGuidance(int top_l, const std::string& path) {
  // SaveGuidance(top_l) may have written a wider grid (it serves from the
  // narrowest store with L' >= top_l), so accept any file with L' >= top_l
  // that this answer set can host, and cache it under its own L'.
  QAG_ASSIGN_OR_RETURN(int stored_l, PeekSolutionStoreL(path));
  if (stored_l < top_l) {
    return Status::InvalidArgument(
        StrCat("file holds a grid for L=", stored_l,
               ", too narrow for requested L=", top_l));
  }
  QAG_ASSIGN_OR_RETURN(const ClusterUniverse* universe,
                       UniverseFor(stored_l));
  QAG_ASSIGN_OR_RETURN(SolutionStore store,
                       LoadSolutionStore(universe, path));
  stores_.emplace(stored_l,
                  std::make_unique<SolutionStore>(std::move(store)));
  return Status::OK();
}

Session::CacheStats Session::cache_stats() const {
  CacheStats stats;
  stats.universes = static_cast<int>(universes_.size());
  stats.stores = static_cast<int>(stores_.size());
  stats.universe_hits = universe_hits_;
  stats.universe_misses = universe_misses_;
  stats.store_hits = store_hits_;
  stats.store_misses = store_misses_;
  return stats;
}

}  // namespace qagview::core
