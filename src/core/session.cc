#include "core/session.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "core/solution_store_io.h"

namespace qagview::core {

namespace {

/// Whether a cached store can serve a Guidance request with these options:
/// every requested D row present, the k range at least as wide on both
/// ends. (Defaults are materialized by PrecomputeOptions::ResolvedFor,
/// mirroring Precompute::Run.)
bool StoreCoversOptions(const SolutionStore& store, const AnswerSet& s,
                        const PrecomputeOptions& options) {
  PrecomputeOptions want = options.ResolvedFor(s.num_attrs());
  if (store.k_max() < want.k_max) return false;
  std::vector<int> have = store.d_values();  // ascending (map keys)
  for (int d : want.d_values) {
    if (!std::binary_search(have.begin(), have.end(), d)) return false;
    // A fresh build merges down to max(k_min, 1); the cached row must
    // reach at least as low.
    if (store.MinK(d).value() > std::max(want.k_min, 1)) return false;
  }
  return true;
}

}  // namespace

Session::Session(std::unique_ptr<AnswerSet> answers)
    : live_(std::make_shared<Generation>()) {
  live_->answers = std::move(answers);
}

Result<std::unique_ptr<Session>> Session::Create(AnswerSet answers) {
  return std::unique_ptr<Session>(
      new Session(std::make_unique<AnswerSet>(std::move(answers))));
}

Result<std::unique_ptr<Session>> Session::FromTable(
    const storage::Table& table, const std::string& value_column) {
  QAG_ASSIGN_OR_RETURN(AnswerSet answers,
                       AnswerSet::FromTable(table, value_column));
  return Create(std::move(answers));
}

std::shared_ptr<const AnswerSet> Session::answers() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return std::shared_ptr<const AnswerSet>(live_, live_->answers.get());
}

std::shared_ptr<Session::Generation> Session::live_generation() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return live_;
}

Status Session::Refresh(AnswerSet answers, RefreshStats* stats) {
  RefreshStats local;
  refreshes_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t new_fp = answers.content_fingerprint();
  std::unique_lock<std::shared_mutex> lock(mu_);
  const AnswerSet& current = *live_->answers;
  local.hierarchy_reused =
      answers.domain_fingerprint() == current.domain_fingerprint() &&
      answers.attr_names() == current.attr_names();
  if (new_fp == current.content_fingerprint() &&
      answers.SameContent(current)) {
    // Provably unchanged: every cached structure's input fingerprint still
    // matches, so the whole session keeps serving warm; the freshly built
    // copy is discarded.
    local.universes_reused = static_cast<int>(universes_.size());
    local.stores_reused = static_cast<int>(stores_.size());
    refresh_full_reuses_.fetch_add(1, std::memory_order_relaxed);
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }
  // Content changed: every cached entry belongs to the outgoing generation
  // (the cache-admission invariant), so all of them are stale by the proof
  // above — drop the serving caches and retire the generation. Its only
  // remaining strong references are external handles: it is destroyed the
  // moment the last one drops (possibly right here, if none exist). Note
  // this deliberately does not reuse-by-fingerprint: a 64-bit collision
  // must not keep a stale grid serving, so the authoritative identity is
  // the generation object itself.
  local.refreshed = true;
  local.universes_retired = static_cast<int>(universes_.size());
  local.stores_retired = static_cast<int>(stores_.size());
  universes_.clear();
  stores_.clear();
  graveyard_.emplace_back(live_);
  ++generations_retired_;
  auto next = std::make_shared<Generation>();
  next->answers = std::make_unique<AnswerSet>(std::move(answers));
  live_ = std::move(next);  // drops the session's ref to the outgoing gen
  // Prune ledger entries whose generation already drained, so the ledger
  // itself stays bounded under sustained updates.
  graveyard_.erase(
      std::remove_if(graveyard_.begin(), graveyard_.end(),
                     [](const std::weak_ptr<Generation>& g) {
                       return g.expired();
                     }),
      graveyard_.end());
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Result<std::shared_ptr<const ClusterUniverse>> Session::UniverseFor(
    int top_l, RequestTrace* trace) {
  QAG_ASSIGN_OR_RETURN(PinnedUniverse pinned, PinnedUniverseFor(top_l, trace));
  return std::shared_ptr<const ClusterUniverse>(std::move(pinned.generation),
                                                pinned.universe);
}

Result<Session::PinnedUniverse> Session::PinnedUniverseFor(
    int top_l, RequestTrace* trace) {
  if (top_l < 1 || top_l > live_generation()->answers->size()) {
    return Status::InvalidArgument("L out of range for this session");
  }
  while (true) {
    // The generation is re-captured per attempt: after a refresh
    // supersedes an in-flight build, retrying waiters must build from (and
    // cache for) the live generation, not the one they first observed.
    std::shared_ptr<Generation> gen;
    // Fast path, shared lock: the narrowest cached universe with
    // top_l' >= top_l serves the request (its cluster set is a superset
    // and all algorithms accept params.L <= top_l').
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = universes_.lower_bound(top_l);
      if (it != universes_.end()) {
        universe_hits_.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr && !trace->coalesced) trace->cache_hit = true;
        return PinnedUniverse{live_, it->second};
      }
      gen = live_;
    }
    // Miss: become the leader for this L, or join an in-flight build for
    // any L' >= top_l (its result will serve this request too).
    std::shared_ptr<FlightLatch> flight;
    bool leader = false;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      auto it = universes_.lower_bound(top_l);  // recheck under exclusive
      if (it != universes_.end()) {
        universe_hits_.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr && !trace->coalesced) trace->cache_hit = true;
        return PinnedUniverse{live_, it->second};
      }
      gen = live_;  // the freshest view before committing to a build
      auto fit = universe_flights_.lower_bound(top_l);
      if (fit != universe_flights_.end()) {
        flight = fit->second;
      } else {
        flight = std::make_shared<FlightLatch>();
        universe_flights_.emplace(top_l, flight);
        leader = true;
      }
    }
    if (!leader) {
      // Another caller owns the flight — wait, then retry from the cache.
      universe_coalesced_.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->coalesced = true;
      Status status = flight->Wait();
      if (!status.ok()) return status;
      continue;
    }
    // Leader: build outside the lock (concurrent readers stay unblocked),
    // publish under the exclusive lock, then release the waiters. The
    // captured generation pins the answer set for the build's duration.
    universe_misses_.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->built = true;
    ClusterUniverse::Options build_options;
    build_options.num_threads = num_threads();
    Result<ClusterUniverse> built =
        ClusterUniverse::Build(gen->answers.get(), top_l, build_options);
    const ClusterUniverse* ptr = nullptr;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      if (built.ok()) {
        auto owned =
            std::make_unique<ClusterUniverse>(std::move(built).value());
        ptr = owned.get();
        // The universe joins the generation it was built from either way;
        // only the *current* generation's structures enter the serving
        // cache (exact generation identity — no fingerprint collisions).
        gen->universes.push_back(std::move(owned));
        if (gen == live_) {
          universes_.emplace(top_l, ptr);
        }
        // else: a refresh superseded this build mid-flight. The result
        // still serves this (overlapping, hence linearizable) request,
        // pinned by the returned handle, and dies when that handle drops.
      }
      universe_flights_.erase(top_l);
    }
    flight->Finish(built.ok() ? Status::OK() : built.status());
    if (!built.ok()) return built.status();
    return PinnedUniverse{std::move(gen), ptr};
  }
}

Result<Solution> Session::Summarize(const Params& params,
                                    const HybridOptions& options,
                                    RequestTrace* trace) {
  return SummarizeWith(params, /*universe_out=*/nullptr, options, trace);
}

Result<Solution> Session::SummarizeWith(
    const Params& params, std::shared_ptr<const ClusterUniverse>* universe_out,
    const HybridOptions& options, RequestTrace* trace) {
  QAG_RETURN_IF_ERROR(ValidateParams(*live_generation()->answers, params));
  QAG_ASSIGN_OR_RETURN(std::shared_ptr<const ClusterUniverse> universe,
                       UniverseFor(params.L, trace));
  Result<Solution> solution = Hybrid::Run(*universe, params, options);
  if (universe_out != nullptr) *universe_out = std::move(universe);
  return solution;
}

const SolutionStore* Session::StoreForLocked(int top_l) const {
  // Mirror of the universe cache policy: the narrowest cached grid with
  // L' >= top_l serves the request (its replays cover the top-L' >= top-L
  // elements, and every stored (k, D) solution remains valid for the
  // narrower coverage request by Proposition 6.1).
  auto it = stores_.lower_bound(top_l);
  if (it == stores_.end()) {
    store_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  store_hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

const SolutionStore* Session::CoveringStoreLocked(
    int top_l, const PrecomputeOptions& options) const {
  for (auto it = stores_.lower_bound(top_l); it != stores_.end(); ++it) {
    if (StoreCoversOptions(*it->second, *live_->answers, options)) {
      return it->second;
    }
  }
  return nullptr;
}

Result<std::shared_ptr<const SolutionStore>> Session::Guidance(
    int top_l, const PrecomputeOptions& options, RequestTrace* trace) {
  // The coalescing key is only needed on a miss; computed lazily so warm
  // cache hits — the interactive serving path — skip its allocations.
  std::string key;
  while (true) {
    // Serve the narrowest cached grid with L' >= top_l — but only when it
    // actually covers the requested (k, D) ranges; a wider-L store built
    // with a narrower grid must not shadow a request for rows it lacks.
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      if (const SolutionStore* store = CoveringStoreLocked(top_l, options)) {
        store_hits_.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr && !trace->coalesced) trace->cache_hit = true;
        return std::shared_ptr<const SolutionStore>(live_, store);
      }
    }
    // Miss: coalesce with an identical in-flight precompute, or lead one.
    if (key.empty()) {
      key = options.CacheKey(top_l, live_generation()->answers->num_attrs());
    }
    std::shared_ptr<FlightLatch> flight;
    bool leader = false;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      if (const SolutionStore* store = CoveringStoreLocked(top_l, options)) {
        store_hits_.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr && !trace->coalesced) trace->cache_hit = true;
        return std::shared_ptr<const SolutionStore>(live_, store);
      }
      auto fit = store_flights_.find(key);
      if (fit != store_flights_.end()) {
        flight = fit->second;
      } else {
        flight = std::make_shared<FlightLatch>();
        store_flights_.emplace(key, flight);
        leader = true;
      }
    }
    if (!leader) {
      store_coalesced_.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->coalesced = true;
      Status status = flight->Wait();
      if (!status.ok()) return status;
      continue;
    }
    store_misses_.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->built = true;
    // The universe build has its own single-flight; no session lock held.
    // The store is derived from (and attached to) the same generation the
    // universe belongs to, so the two always retire and die together.
    auto build = [&]() -> Result<std::shared_ptr<const SolutionStore>> {
      QAG_ASSIGN_OR_RETURN(PinnedUniverse pinned,
                           PinnedUniverseFor(top_l, /*trace=*/nullptr));
      PrecomputeOptions run_options = options;
      if (run_options.num_threads <= 0) {
        run_options.num_threads = num_threads();
      }
      QAG_ASSIGN_OR_RETURN(
          SolutionStore store,
          Precompute::Run(*pinned.universe, top_l, run_options));
      auto owned = std::make_unique<SolutionStore>(std::move(store));
      const SolutionStore* ptr = owned.get();
      std::unique_lock<std::shared_mutex> lock(mu_);
      pinned.generation->stores.push_back(std::move(owned));
      if (pinned.generation == live_) {
        // emplace, never replace: a narrower-grid store at this L may
        // exist and keeps serving the requests it covers.
        stores_.emplace(top_l, ptr);
      }
      // else: superseded by a refresh mid-precompute — the handle serves
      // the overlapping request from the retired generation, which drains
      // when the last reader drops.
      return std::shared_ptr<const SolutionStore>(std::move(pinned.generation),
                                                  ptr);
    };
    Result<std::shared_ptr<const SolutionStore>> outcome = build();
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      store_flights_.erase(key);
    }
    flight->Finish(outcome.ok() ? Status::OK() : outcome.status());
    return outcome;
  }
}

Result<Solution> Session::Retrieve(int top_l, int d, int k,
                                   RequestTrace* trace) {
  // Narrowest store with L' >= top_l that can answer (d, k); a narrower-
  // grid store is skipped if a wider cached one has the row. Cached stores
  // belong to the live generation, which the shared lock keeps published.
  Status first_error = Status::OK();
  bool found_store = false;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (auto it = stores_.lower_bound(top_l); it != stores_.end(); ++it) {
      found_store = true;
      Result<Solution> solution = it->second->Retrieve(d, k);
      if (solution.ok()) {
        store_hits_.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr) trace->cache_hit = true;
        return solution;
      }
      if (first_error.ok()) first_error = solution.status();
    }
  }
  store_misses_.fetch_add(1, std::memory_order_relaxed);
  if (!found_store) {
    return Status::FailedPrecondition(
        "no guidance precomputed covering this L; call Guidance() first");
  }
  return first_error;
}

Status Session::SaveGuidance(int top_l, const std::string& path) const {
  std::shared_ptr<const SolutionStore> store;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (const SolutionStore* found = StoreForLocked(top_l)) {
      store = std::shared_ptr<const SolutionStore>(live_, found);
    }
  }
  if (store == nullptr) {
    return Status::FailedPrecondition(
        "no guidance precomputed covering this L; call Guidance() first");
  }
  // The handle pins the store's generation, so the file write can proceed
  // outside the lock even if a refresh retires the store meanwhile.
  return SaveSolutionStore(*store, path);
}

Status Session::LoadGuidance(int top_l, const std::string& path) {
  // SaveGuidance(top_l) may have written a wider grid (it serves from the
  // narrowest store with L' >= top_l), so accept any file with L' >= top_l
  // that this answer set can host, and cache it under its own L'.
  QAG_ASSIGN_OR_RETURN(int stored_l, PeekSolutionStoreL(path));
  if (stored_l < top_l) {
    return Status::InvalidArgument(
        StrCat("file holds a grid for L=", stored_l,
               ", too narrow for requested L=", top_l));
  }
  QAG_ASSIGN_OR_RETURN(PinnedUniverse pinned,
                       PinnedUniverseFor(stored_l, /*trace=*/nullptr));
  QAG_ASSIGN_OR_RETURN(SolutionStore store,
                       LoadSolutionStore(pinned.universe, path));
  auto owned = std::make_unique<SolutionStore>(std::move(store));
  const SolutionStore* ptr = owned.get();
  std::unique_lock<std::shared_mutex> lock(mu_);
  pinned.generation->stores.push_back(std::move(owned));
  if (pinned.generation == live_) {
    stores_.emplace(stored_l, ptr);
  }
  // else: a refresh raced the load; the file's grid no longer matches the
  // live answer set, so it must not enter the serving cache — it drains
  // with its retired generation.
  return Status::OK();
}

Session::CacheStats Session::cache_stats() const {
  CacheStats stats;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    stats.universes = static_cast<int>(universes_.size());
    stats.stores = static_cast<int>(stores_.size());
    // Count what the graveyard still retains by probing the ledger's weak
    // references: an entry that no longer locks has been evicted (its
    // readers drained and the generation was destroyed).
    int alive = 0;
    for (const std::weak_ptr<Generation>& entry : graveyard_) {
      if (std::shared_ptr<Generation> gen = entry.lock()) {
        ++alive;
        stats.retired_universes += static_cast<int>(gen->universes.size());
        stats.retired_stores += static_cast<int>(gen->stores.size());
      }
    }
    stats.graveyard_size = alive;
    stats.live_generations = alive + 1;
    stats.generations_evicted = generations_retired_ - alive;
  }
  stats.universe_hits = universe_hits_.load(std::memory_order_relaxed);
  stats.universe_misses = universe_misses_.load(std::memory_order_relaxed);
  stats.store_hits = store_hits_.load(std::memory_order_relaxed);
  stats.store_misses = store_misses_.load(std::memory_order_relaxed);
  stats.universe_coalesced =
      universe_coalesced_.load(std::memory_order_relaxed);
  stats.store_coalesced = store_coalesced_.load(std::memory_order_relaxed);
  stats.refreshes = refreshes_.load(std::memory_order_relaxed);
  stats.refresh_full_reuses =
      refresh_full_reuses_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace qagview::core
