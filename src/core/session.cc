#include "core/session.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "core/solution_store_io.h"

namespace qagview::core {

namespace {

/// Whether a cached store can serve a Guidance request with these options:
/// every requested D row present, the k range at least as wide on both
/// ends. (Defaults are materialized by PrecomputeOptions::ResolvedFor,
/// mirroring Precompute::Run.)
bool StoreCoversOptions(const SolutionStore& store, const AnswerSet& s,
                        const PrecomputeOptions& options) {
  PrecomputeOptions want = options.ResolvedFor(s.num_attrs());
  if (store.k_max() < want.k_max) return false;
  std::vector<int> have = store.d_values();  // ascending (map keys)
  for (int d : want.d_values) {
    if (!std::binary_search(have.begin(), have.end(), d)) return false;
    // A fresh build merges down to max(k_min, 1); the cached row must
    // reach at least as low.
    if (store.MinK(d).value() > std::max(want.k_min, 1)) return false;
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<Session>> Session::Create(AnswerSet answers) {
  return std::unique_ptr<Session>(
      new Session(std::make_unique<AnswerSet>(std::move(answers))));
}

Result<std::unique_ptr<Session>> Session::FromTable(
    const storage::Table& table, const std::string& value_column) {
  QAG_ASSIGN_OR_RETURN(AnswerSet answers,
                       AnswerSet::FromTable(table, value_column));
  return Create(std::move(answers));
}

const AnswerSet& Session::answers() const { return *current_answers(); }

const AnswerSet* Session::current_answers() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return answers_.get();
}

Status Session::Refresh(AnswerSet answers, RefreshStats* stats) {
  RefreshStats local;
  refreshes_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t new_fp = answers.content_fingerprint();
  std::unique_lock<std::shared_mutex> lock(mu_);
  local.hierarchy_reused =
      answers.domain_fingerprint() == answers_->domain_fingerprint() &&
      answers.attr_names() == answers_->attr_names();
  if (new_fp == answers_->content_fingerprint() &&
      answers.SameContent(*answers_)) {
    // Provably unchanged: every cached structure's input fingerprint still
    // matches, so the whole session keeps serving warm; the freshly built
    // copy is discarded.
    local.universes_reused = static_cast<int>(universes_.size());
    local.stores_reused = static_cast<int>(stores_.size());
    refresh_full_reuses_.fetch_add(1, std::memory_order_relaxed);
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }
  // Content changed: every cached entry was built from the outgoing
  // answer set (the cache-admission invariant below), so all of them are
  // stale by the proof above — retire the lot into the graveyard (pointers
  // handed out earlier stay valid; in-flight readers drain, they are never
  // torn down), then install the new answer set. Note this deliberately
  // does not reuse-by-fingerprint here: a 64-bit collision must not keep a
  // stale grid serving, so the authoritative identity is the answer-set
  // object itself.
  local.refreshed = true;
  local.universes_retired = static_cast<int>(universes_.size());
  for (auto& [l, universe] : universes_) {
    retired_universes_.push_back(std::move(universe));
  }
  universes_.clear();
  local.stores_retired = static_cast<int>(stores_.size());
  for (auto& [l, store] : stores_) {
    retired_stores_.push_back(std::move(store));
  }
  stores_.clear();
  retired_answers_.push_back(std::move(answers_));
  answers_ = std::make_unique<AnswerSet>(std::move(answers));
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Result<const ClusterUniverse*> Session::UniverseFor(int top_l,
                                                    RequestTrace* trace) {
  if (top_l < 1 || top_l > current_answers()->size()) {
    return Status::InvalidArgument("L out of range for this session");
  }
  while (true) {
    // Re-captured per attempt: after a refresh supersedes an in-flight
    // build, retrying waiters must build from (and cache for) the live
    // answer set, not the one they first observed.
    const AnswerSet* answers = current_answers();
    // Fast path, shared lock: the narrowest cached universe with
    // top_l' >= top_l serves the request (its cluster set is a superset
    // and all algorithms accept params.L <= top_l').
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = universes_.lower_bound(top_l);
      if (it != universes_.end()) {
        universe_hits_.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr && !trace->coalesced) trace->cache_hit = true;
        return it->second.get();
      }
    }
    // Miss: become the leader for this L, or join an in-flight build for
    // any L' >= top_l (its result will serve this request too).
    std::shared_ptr<FlightLatch> flight;
    bool leader = false;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      auto it = universes_.lower_bound(top_l);  // recheck under exclusive
      if (it != universes_.end()) {
        universe_hits_.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr && !trace->coalesced) trace->cache_hit = true;
        return it->second.get();
      }
      auto fit = universe_flights_.lower_bound(top_l);
      if (fit != universe_flights_.end()) {
        flight = fit->second;
      } else {
        flight = std::make_shared<FlightLatch>();
        universe_flights_.emplace(top_l, flight);
        leader = true;
      }
    }
    if (!leader) {
      // Another caller owns the flight — wait, then retry from the cache.
      universe_coalesced_.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->coalesced = true;
      Status status = flight->Wait();
      if (!status.ok()) return status;
      continue;
    }
    // Leader: build outside the lock (concurrent readers stay unblocked),
    // publish under the exclusive lock, then release the waiters.
    universe_misses_.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->built = true;
    ClusterUniverse::Options build_options;
    build_options.num_threads = num_threads();
    Result<ClusterUniverse> built =
        ClusterUniverse::Build(answers, top_l, build_options);
    const ClusterUniverse* ptr = nullptr;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      if (built.ok()) {
        auto owned =
            std::make_unique<ClusterUniverse>(std::move(built).value());
        ptr = owned.get();
        // Cache-admission invariant: only structures built from the
        // *current* answer-set object enter the cache (exact pointer
        // identity — no fingerprint collisions).
        if (&owned->answer_set() == answers_.get()) {
          universes_.emplace(top_l, std::move(owned));
        } else {
          // A refresh superseded this build mid-flight: the result still
          // serves this (overlapping, hence linearizable) request, but it
          // goes to the graveyard instead of the cache.
          retired_universes_.push_back(std::move(owned));
        }
      }
      universe_flights_.erase(top_l);
    }
    flight->Finish(built.ok() ? Status::OK() : built.status());
    if (!built.ok()) return built.status();
    return ptr;
  }
}

Result<Solution> Session::Summarize(const Params& params,
                                    const HybridOptions& options,
                                    RequestTrace* trace) {
  return SummarizeWith(params, /*universe_out=*/nullptr, options, trace);
}

Result<Solution> Session::SummarizeWith(const Params& params,
                                        const ClusterUniverse** universe_out,
                                        const HybridOptions& options,
                                        RequestTrace* trace) {
  QAG_RETURN_IF_ERROR(ValidateParams(*current_answers(), params));
  QAG_ASSIGN_OR_RETURN(const ClusterUniverse* universe,
                       UniverseFor(params.L, trace));
  if (universe_out != nullptr) *universe_out = universe;
  return Hybrid::Run(*universe, params, options);
}

const SolutionStore* Session::StoreForLocked(int top_l) const {
  // Mirror of the universe cache policy: the narrowest cached grid with
  // L' >= top_l serves the request (its replays cover the top-L' >= top-L
  // elements, and every stored (k, D) solution remains valid for the
  // narrower coverage request by Proposition 6.1).
  auto it = stores_.lower_bound(top_l);
  if (it == stores_.end()) {
    store_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  store_hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.get();
}

const SolutionStore* Session::CoveringStoreLocked(
    int top_l, const PrecomputeOptions& options) const {
  for (auto it = stores_.lower_bound(top_l); it != stores_.end(); ++it) {
    if (StoreCoversOptions(*it->second, *answers_, options)) {
      return it->second.get();
    }
  }
  return nullptr;
}

Result<const SolutionStore*> Session::Guidance(
    int top_l, const PrecomputeOptions& options, RequestTrace* trace) {
  // The coalescing key is only needed on a miss; computed lazily so warm
  // cache hits — the interactive serving path — skip its allocations.
  std::string key;
  while (true) {
    // Serve the narrowest cached grid with L' >= top_l — but only when it
    // actually covers the requested (k, D) ranges; a wider-L store built
    // with a narrower grid must not shadow a request for rows it lacks.
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      if (const SolutionStore* store = CoveringStoreLocked(top_l, options)) {
        store_hits_.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr && !trace->coalesced) trace->cache_hit = true;
        return store;
      }
    }
    // Miss: coalesce with an identical in-flight precompute, or lead one.
    if (key.empty()) {
      key = options.CacheKey(top_l, current_answers()->num_attrs());
    }
    std::shared_ptr<FlightLatch> flight;
    bool leader = false;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      if (const SolutionStore* store = CoveringStoreLocked(top_l, options)) {
        store_hits_.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr && !trace->coalesced) trace->cache_hit = true;
        return store;
      }
      auto fit = store_flights_.find(key);
      if (fit != store_flights_.end()) {
        flight = fit->second;
      } else {
        flight = std::make_shared<FlightLatch>();
        store_flights_.emplace(key, flight);
        leader = true;
      }
    }
    if (!leader) {
      store_coalesced_.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->coalesced = true;
      Status status = flight->Wait();
      if (!status.ok()) return status;
      continue;
    }
    store_misses_.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->built = true;
    // The universe build has its own single-flight; no session lock held.
    auto build = [&]() -> Result<const SolutionStore*> {
      QAG_ASSIGN_OR_RETURN(const ClusterUniverse* universe,
                           UniverseFor(top_l));
      PrecomputeOptions run_options = options;
      if (run_options.num_threads <= 0) {
        run_options.num_threads = num_threads();
      }
      QAG_ASSIGN_OR_RETURN(SolutionStore store,
                           Precompute::Run(*universe, top_l, run_options));
      auto owned = std::make_unique<SolutionStore>(std::move(store));
      const SolutionStore* ptr = owned.get();
      std::unique_lock<std::shared_mutex> lock(mu_);
      if (&ptr->universe()->answer_set() == answers_.get()) {
        // emplace, never replace: a narrower-grid store at this L may
        // exist and keeps serving the requests it covers (and pointers
        // previously handed out must stay valid).
        stores_.emplace(top_l, std::move(owned));
      } else {
        // Superseded by a refresh mid-precompute: serve the overlapping
        // request from the graveyard instead of caching a stale grid.
        retired_stores_.push_back(std::move(owned));
      }
      return ptr;
    };
    Result<const SolutionStore*> outcome = build();
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      store_flights_.erase(key);
    }
    flight->Finish(outcome.ok() ? Status::OK() : outcome.status());
    return outcome;
  }
}

Result<Solution> Session::Retrieve(int top_l, int d, int k,
                                   RequestTrace* trace) {
  // Narrowest store with L' >= top_l that can answer (d, k); a narrower-
  // grid store is skipped if a wider cached one has the row.
  Status first_error = Status::OK();
  bool found_store = false;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (auto it = stores_.lower_bound(top_l); it != stores_.end(); ++it) {
      found_store = true;
      Result<Solution> solution = it->second->Retrieve(d, k);
      if (solution.ok()) {
        store_hits_.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr) trace->cache_hit = true;
        return solution;
      }
      if (first_error.ok()) first_error = solution.status();
    }
  }
  store_misses_.fetch_add(1, std::memory_order_relaxed);
  if (!found_store) {
    return Status::FailedPrecondition(
        "no guidance precomputed covering this L; call Guidance() first");
  }
  return first_error;
}

Status Session::SaveGuidance(int top_l, const std::string& path) const {
  const SolutionStore* store = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    store = StoreForLocked(top_l);
  }
  if (store == nullptr) {
    return Status::FailedPrecondition(
        "no guidance precomputed covering this L; call Guidance() first");
  }
  // Stores are immutable and never evicted, so the file write can proceed
  // outside the lock without blocking concurrent requests.
  return SaveSolutionStore(*store, path);
}

Status Session::LoadGuidance(int top_l, const std::string& path) {
  // SaveGuidance(top_l) may have written a wider grid (it serves from the
  // narrowest store with L' >= top_l), so accept any file with L' >= top_l
  // that this answer set can host, and cache it under its own L'.
  QAG_ASSIGN_OR_RETURN(int stored_l, PeekSolutionStoreL(path));
  if (stored_l < top_l) {
    return Status::InvalidArgument(
        StrCat("file holds a grid for L=", stored_l,
               ", too narrow for requested L=", top_l));
  }
  QAG_ASSIGN_OR_RETURN(const ClusterUniverse* universe,
                       UniverseFor(stored_l));
  QAG_ASSIGN_OR_RETURN(SolutionStore store,
                       LoadSolutionStore(universe, path));
  auto owned = std::make_unique<SolutionStore>(std::move(store));
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (&owned->universe()->answer_set() == answers_.get()) {
    stores_.emplace(stored_l, std::move(owned));
  } else {
    // A refresh raced the load; the file's grid no longer matches the
    // current answer set, so it must not enter the serving cache.
    retired_stores_.push_back(std::move(owned));
  }
  return Status::OK();
}

Session::CacheStats Session::cache_stats() const {
  CacheStats stats;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    stats.universes = static_cast<int>(universes_.size());
    stats.stores = static_cast<int>(stores_.size());
    stats.retired_universes = static_cast<int>(retired_universes_.size());
    stats.retired_stores = static_cast<int>(retired_stores_.size());
  }
  stats.universe_hits = universe_hits_.load(std::memory_order_relaxed);
  stats.universe_misses = universe_misses_.load(std::memory_order_relaxed);
  stats.store_hits = store_hits_.load(std::memory_order_relaxed);
  stats.store_misses = store_misses_.load(std::memory_order_relaxed);
  stats.universe_coalesced =
      universe_coalesced_.load(std::memory_order_relaxed);
  stats.store_coalesced = store_coalesced_.load(std::memory_order_relaxed);
  stats.refreshes = refreshes_.load(std::memory_order_relaxed);
  stats.refresh_full_reuses =
      refresh_full_reuses_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace qagview::core
