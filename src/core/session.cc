#include "core/session.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "core/solution_store_io.h"

namespace qagview::core {

Session::Session(std::unique_ptr<AnswerSet> answers) {
  auto generation = std::make_shared<Generation>();
  generation->answers = std::move(answers);
  auto view = std::make_shared<ReadView>();
  view->generation = std::move(generation);
  view_ = std::move(view);  // construction: not yet shared, plain store
}

Result<std::unique_ptr<Session>> Session::Create(AnswerSet answers) {
  return std::unique_ptr<Session>(
      new Session(std::make_unique<AnswerSet>(std::move(answers))));
}

Result<std::unique_ptr<Session>> Session::FromTable(
    const storage::Table& table, const std::string& value_column) {
  QAG_ASSIGN_OR_RETURN(AnswerSet answers,
                       AnswerSet::FromTable(table, value_column));
  return Create(std::move(answers));
}

std::shared_ptr<const AnswerSet> Session::answers() const {
  std::shared_ptr<const ReadView> view = CurrentView();
  return std::shared_ptr<const AnswerSet>(view->generation,
                                          view->generation->answers.get());
}

Approximation Session::approximation() const {
  return CurrentView()->generation->answers->approximation();
}

Status Session::Refresh(AnswerSet answers, RefreshStats* stats) {
  RefreshStats local;
  Counters().refreshes.fetch_add(1, std::memory_order_relaxed);
  const uint64_t new_fp = answers.content_fingerprint();
  std::unique_lock<std::shared_mutex> lock = WriterLock();
  std::shared_ptr<const ReadView> view = CurrentView();
  const AnswerSet& current = *view->generation->answers;
  local.hierarchy_reused =
      answers.domain_fingerprint() == current.domain_fingerprint() &&
      answers.attr_names() == current.attr_names();
  if (new_fp == current.content_fingerprint() &&
      answers.SameContent(current)) {
    // Provably unchanged: every cached structure's input fingerprint still
    // matches, so the whole session keeps serving warm; the freshly built
    // copy is discarded.
    local.universes_reused = static_cast<int>(view->universes.size());
    local.stores_reused = static_cast<int>(view->stores.size());
    Counters().refresh_full_reuses.fetch_add(1, std::memory_order_relaxed);
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }
  // Content changed: every cached entry belongs to the outgoing generation
  // (the view-admission invariant), so all of them are stale by the proof
  // above — publish a fresh empty view and retire the generation. Readers
  // are never blocked: anyone inside the old view keeps serving its
  // pinned, immutable snapshot; the next request loads the new one. The
  // retired generation's only remaining strong references are external
  // handles (and those momentary reader pins): it is destroyed the moment
  // the last one drops (possibly right here, if none exist). Note this
  // deliberately does not reuse-by-fingerprint: a 64-bit collision must
  // not keep a stale grid serving, so the authoritative identity is the
  // generation object itself.
  local.refreshed = true;
  local.universes_retired = static_cast<int>(view->universes.size());
  local.stores_retired = static_cast<int>(view->stores.size());
  graveyard_.emplace_back(view->generation);
  ++generations_retired_;
  auto next_generation = std::make_shared<Generation>();
  next_generation->answers = std::make_unique<AnswerSet>(std::move(answers));
  auto next_view = std::make_shared<ReadView>();
  next_view->generation = std::move(next_generation);
  PublishView(std::move(next_view));
  // Drop this writer's own pin so a handle-less outgoing generation is
  // destroyed right here, before the ledger prune below observes it.
  view.reset();
  // Prune ledger entries whose generation already drained, so the ledger
  // itself stays bounded under sustained updates.
  graveyard_.erase(
      std::remove_if(graveyard_.begin(), graveyard_.end(),
                     [](const std::weak_ptr<Generation>& g) {
                       return g.expired();
                     }),
      graveyard_.end());
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Result<std::shared_ptr<const ClusterUniverse>> Session::UniverseFor(
    int top_l, RequestTrace* trace) {
  QAG_ASSIGN_OR_RETURN(PinnedUniverse pinned, PinnedUniverseFor(top_l, trace));
  return std::shared_ptr<const ClusterUniverse>(std::move(pinned.generation),
                                                pinned.universe);
}

Result<Session::PinnedUniverse> Session::PinnedUniverseFor(
    int top_l, RequestTrace* trace) {
  if (top_l < 1 || top_l > CurrentView()->generation->answers->size()) {
    return Status::InvalidArgument("L out of range for this session");
  }
  while (true) {
    // Warm path — the RCU read side: one atomic load pins the view, and
    // the narrowest cached universe with top_l' >= top_l serves the
    // request (its cluster set is a superset and all algorithms accept
    // params.L <= top_l'). No locks, no shared-cacheline writes beyond
    // the handle refcount and a per-thread counter shard.
    std::shared_ptr<const ReadView> view = CurrentView();
    auto hit = view->universes.lower_bound(top_l);
    if (hit != view->universes.end()) {
      Counters().universe_hits.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr && !trace->coalesced) trace->cache_hit = true;
      return PinnedUniverse{view->generation, hit->second};
    }
    // Miss: become the leader for this L, or join an in-flight build for
    // any L' >= top_l (its result will serve this request too).
    std::shared_ptr<Generation> gen;
    std::shared_ptr<FlightLatch> flight;
    bool leader = false;
    {
      std::unique_lock<std::shared_mutex> lock = WriterLock();
      // Recheck the freshest view under the writer lock: publication is
      // serialized by it, so a hit here is definitive.
      std::shared_ptr<const ReadView> fresh = CurrentView();
      auto it = fresh->universes.lower_bound(top_l);
      if (it != fresh->universes.end()) {
        Counters().universe_hits.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr && !trace->coalesced) trace->cache_hit = true;
        return PinnedUniverse{fresh->generation, it->second};
      }
      gen = fresh->generation;  // the freshest view before committing
      auto fit = universe_flights_.lower_bound(top_l);
      if (fit != universe_flights_.end()) {
        flight = fit->second;
      } else {
        flight = std::make_shared<FlightLatch>();
        universe_flights_.emplace(top_l, flight);
        leader = true;
      }
    }
    if (!leader) {
      // Another caller owns the flight — wait, then retry from the view.
      Counters().universe_coalesced.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->coalesced = true;
      Status status = flight->Wait();
      if (!status.ok()) return status;
      continue;
    }
    // Leader: build outside the lock (concurrent readers stay unblocked),
    // publish a successor view under the writer lock, then release the
    // waiters. The captured generation pins the answer set for the
    // build's duration.
    Counters().universe_misses.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->built = true;
    ClusterUniverse::Options build_options;
    build_options.num_threads = num_threads();
    Result<ClusterUniverse> built =
        ClusterUniverse::Build(gen->answers.get(), top_l, build_options);
    const ClusterUniverse* ptr = nullptr;
    {
      std::unique_lock<std::shared_mutex> lock = WriterLock();
      if (built.ok()) {
        auto owned =
            std::make_unique<ClusterUniverse>(std::move(built).value());
        ptr = owned.get();
        // The universe joins the generation it was built from either way;
        // only the *current* generation's structures enter the serving
        // view (exact generation identity — no fingerprint collisions).
        gen->universes.push_back(std::move(owned));
        std::shared_ptr<const ReadView> cur = CurrentView();
        if (cur->generation == gen) {
          auto next = std::make_shared<ReadView>(*cur);
          next->universes.emplace(top_l, ptr);
          PublishView(std::move(next));
        }
        // else: a refresh superseded this build mid-flight. The result
        // still serves this (overlapping, hence linearizable) request,
        // pinned by the returned handle, and dies when that handle drops.
      }
      universe_flights_.erase(top_l);
    }
    flight->Finish(built.ok() ? Status::OK() : built.status());
    if (!built.ok()) return built.status();
    return PinnedUniverse{std::move(gen), ptr};
  }
}

Result<Solution> Session::Summarize(const Params& params,
                                    const HybridOptions& options,
                                    RequestTrace* trace) {
  return SummarizeWith(params, /*universe_out=*/nullptr, options, trace);
}

Result<Solution> Session::SummarizeWith(
    const Params& params, std::shared_ptr<const ClusterUniverse>* universe_out,
    const HybridOptions& options, RequestTrace* trace) {
  QAG_RETURN_IF_ERROR(
      ValidateParams(*CurrentView()->generation->answers, params));
  QAG_ASSIGN_OR_RETURN(std::shared_ptr<const ClusterUniverse> universe,
                       UniverseFor(params.L, trace));
  Result<Solution> solution = Hybrid::Run(*universe, params, options);
  if (universe_out != nullptr) *universe_out = std::move(universe);
  return solution;
}

const SolutionStore* Session::CoveringStore(const ReadView& view, int top_l,
                                            const PrecomputeOptions& resolved) {
  // Serve the narrowest cached grid with L' >= top_l — but only when it
  // actually covers the requested (k, D) ranges; a wider-L store built
  // with a narrower grid must not shadow a request for rows it lacks.
  for (auto it = view.stores.lower_bound(top_l); it != view.stores.end();
       ++it) {
    if (resolved.CoveredBy(*it->second)) return it->second;
  }
  return nullptr;
}

Result<std::shared_ptr<const SolutionStore>> Session::Guidance(
    int top_l, const PrecomputeOptions& options, RequestTrace* trace) {
  // The request is resolved once against the schema of the pinned
  // generation (and re-resolved only if a refresh swaps the generation
  // mid-loop); the warm hit path below then probes every candidate store
  // lock- and allocation-free. The coalescing key is only needed on a
  // miss and is computed lazily there.
  PrecomputeOptions resolved;
  const Generation* resolved_for = nullptr;
  std::string key;
  while (true) {
    std::shared_ptr<const ReadView> view = CurrentView();
    if (resolved_for != view->generation.get()) {
      resolved = options.ResolvedFor(view->generation->answers->num_attrs());
      resolved_for = view->generation.get();
      key.clear();
    }
    if (const SolutionStore* store = CoveringStore(*view, top_l, resolved)) {
      Counters().store_hits.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr && !trace->coalesced) trace->cache_hit = true;
      return std::shared_ptr<const SolutionStore>(view->generation, store);
    }
    // Miss: coalesce with an identical in-flight precompute, or lead one.
    if (key.empty()) {
      key = options.CacheKey(top_l, view->generation->answers->num_attrs());
    }
    std::shared_ptr<FlightLatch> flight;
    bool leader = false;
    {
      std::unique_lock<std::shared_mutex> lock = WriterLock();
      std::shared_ptr<const ReadView> fresh = CurrentView();
      if (fresh->generation.get() != resolved_for) {
        continue;  // refresh landed since the probe: re-resolve first
      }
      if (const SolutionStore* store =
              CoveringStore(*fresh, top_l, resolved)) {
        Counters().store_hits.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr && !trace->coalesced) trace->cache_hit = true;
        return std::shared_ptr<const SolutionStore>(fresh->generation, store);
      }
      auto fit = store_flights_.find(key);
      if (fit != store_flights_.end()) {
        flight = fit->second;
      } else {
        flight = std::make_shared<FlightLatch>();
        store_flights_.emplace(key, flight);
        leader = true;
      }
    }
    if (!leader) {
      Counters().store_coalesced.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->coalesced = true;
      Status status = flight->Wait();
      if (!status.ok()) return status;
      continue;
    }
    Counters().store_misses.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->built = true;
    // The universe build has its own single-flight; no session lock held.
    // The store is derived from (and attached to) the same generation the
    // universe belongs to, so the two always retire and die together.
    auto build = [&]() -> Result<std::shared_ptr<const SolutionStore>> {
      QAG_ASSIGN_OR_RETURN(PinnedUniverse pinned,
                           PinnedUniverseFor(top_l, /*trace=*/nullptr));
      PrecomputeOptions run_options = options;
      if (run_options.num_threads <= 0) {
        run_options.num_threads = num_threads();
      }
      QAG_ASSIGN_OR_RETURN(
          SolutionStore store,
          Precompute::Run(*pinned.universe, top_l, run_options));
      auto owned = std::make_unique<SolutionStore>(std::move(store));
      const SolutionStore* ptr = owned.get();
      std::unique_lock<std::shared_mutex> lock = WriterLock();
      pinned.generation->stores.push_back(std::move(owned));
      std::shared_ptr<const ReadView> cur = CurrentView();
      if (cur->generation == pinned.generation) {
        // emplace, never replace: a narrower-grid store at this L may
        // exist and keeps serving the requests it covers.
        auto next = std::make_shared<ReadView>(*cur);
        next->stores.emplace(top_l, ptr);
        PublishView(std::move(next));
      }
      // else: superseded by a refresh mid-precompute — the handle serves
      // the overlapping request from the retired generation, which drains
      // when the last reader drops.
      return std::shared_ptr<const SolutionStore>(std::move(pinned.generation),
                                                  ptr);
    };
    Result<std::shared_ptr<const SolutionStore>> outcome = build();
    {
      std::unique_lock<std::shared_mutex> lock = WriterLock();
      store_flights_.erase(key);
    }
    flight->Finish(outcome.ok() ? Status::OK() : outcome.status());
    return outcome;
  }
}

Result<Solution> Session::Retrieve(int top_l, int d, int k,
                                   RequestTrace* trace) {
  // Narrowest store with L' >= top_l that can answer (d, k); a narrower-
  // grid store is skipped if a wider cached one has the row. Lock-free:
  // the pinned view keeps every candidate's generation alive for the
  // whole scan.
  std::shared_ptr<const ReadView> view = CurrentView();
  Status first_error = Status::OK();
  bool found_store = false;
  for (auto it = view->stores.lower_bound(top_l); it != view->stores.end();
       ++it) {
    found_store = true;
    Result<Solution> solution = it->second->Retrieve(d, k);
    if (solution.ok()) {
      Counters().store_hits.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->cache_hit = true;
      return solution;
    }
    if (first_error.ok()) first_error = solution.status();
  }
  Counters().store_misses.fetch_add(1, std::memory_order_relaxed);
  if (!found_store) {
    return Status::FailedPrecondition(
        "no guidance precomputed covering this L; call Guidance() first");
  }
  return first_error;
}

Status Session::SaveGuidance(int top_l, const std::string& path) const {
  // Mirror of the universe cache policy: the narrowest cached grid with
  // L' >= top_l serves (its replays cover the top-L' >= top-L elements,
  // and every stored (k, D) solution remains valid for the narrower
  // coverage request by Proposition 6.1). The pinned view keeps the
  // store's generation alive across the file write; no lock is held.
  std::shared_ptr<const ReadView> view = CurrentView();
  auto it = view->stores.lower_bound(top_l);
  if (it == view->stores.end()) {
    Counters().store_misses.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition(
        "no guidance precomputed covering this L; call Guidance() first");
  }
  Counters().store_hits.fetch_add(1, std::memory_order_relaxed);
  return SaveSolutionStore(*it->second, path);
}

Status Session::LoadGuidance(int top_l, const std::string& path) {
  // SaveGuidance(top_l) may have written a wider grid (it serves from the
  // narrowest store with L' >= top_l), so accept any file with L' >= top_l
  // that this answer set can host, and cache it under its own L'.
  QAG_ASSIGN_OR_RETURN(int stored_l, PeekSolutionStoreL(path));
  if (stored_l < top_l) {
    return Status::InvalidArgument(
        StrCat("file holds a grid for L=", stored_l,
               ", too narrow for requested L=", top_l));
  }
  QAG_ASSIGN_OR_RETURN(PinnedUniverse pinned,
                       PinnedUniverseFor(stored_l, /*trace=*/nullptr));
  QAG_ASSIGN_OR_RETURN(SolutionStore store,
                       LoadSolutionStore(pinned.universe, path));
  AdmitLoadedStore(std::move(pinned), std::move(store));
  return Status::OK();
}

void Session::AdmitLoadedStore(PinnedUniverse pinned, SolutionStore store) {
  const int stored_l = store.l();
  auto owned = std::make_unique<SolutionStore>(std::move(store));
  const SolutionStore* ptr = owned.get();
  std::unique_lock<std::shared_mutex> lock = WriterLock();
  pinned.generation->stores.push_back(std::move(owned));
  std::shared_ptr<const ReadView> cur = CurrentView();
  if (cur->generation == pinned.generation) {
    auto next = std::make_shared<ReadView>(*cur);
    next->stores.emplace(stored_l, ptr);
    PublishView(std::move(next));
  }
  // else: a refresh raced the load; the loaded grid no longer matches the
  // live answer set, so it must not enter the serving view — it drains
  // with its retired generation.
}

Result<Session::GuidanceSnapshot> Session::SnapshotGuidance(int top_l) const {
  // Same covering policy as SaveGuidance: the narrowest cached grid with
  // L' >= top_l. One pinned view supplies both the store and the answer
  // set it was built from, so the snapshot's payload and identity stamps
  // are mutually consistent even if a refresh publishes concurrently.
  std::shared_ptr<const ReadView> view = CurrentView();
  auto it = view->stores.lower_bound(top_l);
  if (it == view->stores.end()) {
    Counters().store_misses.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition(
        "no guidance precomputed covering this L; call Guidance() first");
  }
  Counters().store_hits.fetch_add(1, std::memory_order_relaxed);
  const AnswerSet& answers = *view->generation->answers;
  GuidanceSnapshot snapshot;
  snapshot.store_l = it->second->l();
  snapshot.content_fingerprint = answers.content_fingerprint();
  snapshot.domain_fingerprint = answers.domain_fingerprint();
  snapshot.num_answers = answers.size();
  snapshot.num_attrs = answers.num_attrs();
  snapshot.payload = SerializeSolutionStore(*it->second);
  return snapshot;
}

Status Session::LoadGuidanceSnapshot(const GuidanceSnapshot& snapshot) {
  // Identity gate: the snapshot must have been built from exactly the
  // answer set currently published (content and code space both). A
  // mismatch — older data, approximate vs exact phase, different query —
  // fails here, before any build runs.
  {
    std::shared_ptr<const AnswerSet> current = answers();
    if (snapshot.content_fingerprint != current->content_fingerprint() ||
        snapshot.domain_fingerprint != current->domain_fingerprint() ||
        snapshot.num_answers != current->size() ||
        snapshot.num_attrs != current->num_attrs()) {
      return Status::InvalidArgument(
          "snapshot was built from a different answer set");
    }
    if (snapshot.store_l < 1 || snapshot.store_l > current->size()) {
      return Status::InvalidArgument(
          StrCat("snapshot L=", snapshot.store_l,
                 " out of range for this answer set"));
    }
  }
  QAG_ASSIGN_OR_RETURN(PinnedUniverse pinned,
                       PinnedUniverseFor(snapshot.store_l, /*trace=*/nullptr));
  // The deserializer re-resolves every cluster pattern via FindId: the
  // exact integrity check behind the fingerprint gate above.
  QAG_ASSIGN_OR_RETURN(
      SolutionStore store,
      DeserializeSolutionStore(pinned.universe, snapshot.payload));
  AdmitLoadedStore(std::move(pinned), std::move(store));
  return Status::OK();
}

Session::CacheStats Session::cache_stats() const {
  CacheStats stats;
  {
    std::shared_ptr<const ReadView> view = CurrentView();
    stats.universes = static_cast<int>(view->universes.size());
    stats.stores = static_cast<int>(view->stores.size());
    // The pin is dropped here, before the graveyard probe below: a
    // generation retired by a racing refresh must not read as "still
    // retained" merely because this observer holds the outgoing view.
  }
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    // Count what the graveyard still retains by probing the ledger's weak
    // references: an entry that no longer locks has been evicted (its
    // readers drained and the generation was destroyed).
    int alive = 0;
    for (const std::weak_ptr<Generation>& entry : graveyard_) {
      if (std::shared_ptr<Generation> gen = entry.lock()) {
        ++alive;
        stats.retired_universes += static_cast<int>(gen->universes.size());
        stats.retired_stores += static_cast<int>(gen->stores.size());
      }
    }
    stats.graveyard_size = alive;
    stats.live_generations = alive + 1;
    stats.generations_evicted = generations_retired_ - alive;
  }
  shards_.ForEach([&stats](const CounterShard& shard) {
    stats.universe_hits += shard.universe_hits.load(std::memory_order_relaxed);
    stats.universe_misses +=
        shard.universe_misses.load(std::memory_order_relaxed);
    stats.store_hits += shard.store_hits.load(std::memory_order_relaxed);
    stats.store_misses += shard.store_misses.load(std::memory_order_relaxed);
    stats.universe_coalesced +=
        shard.universe_coalesced.load(std::memory_order_relaxed);
    stats.store_coalesced +=
        shard.store_coalesced.load(std::memory_order_relaxed);
    stats.refreshes += shard.refreshes.load(std::memory_order_relaxed);
    stats.refresh_full_reuses +=
        shard.refresh_full_reuses.load(std::memory_order_relaxed);
  });
  stats.writer_lock_acquisitions =
      writer_lock_acquisitions_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace qagview::core
