#include "core/session.h"

#include "common/string_util.h"
#include "core/solution_store_io.h"

namespace qagview::core {

Result<std::unique_ptr<Session>> Session::Create(AnswerSet answers) {
  return std::unique_ptr<Session>(
      new Session(std::make_unique<AnswerSet>(std::move(answers))));
}

Result<std::unique_ptr<Session>> Session::FromTable(
    const storage::Table& table, const std::string& value_column) {
  QAG_ASSIGN_OR_RETURN(AnswerSet answers,
                       AnswerSet::FromTable(table, value_column));
  return Create(std::move(answers));
}

Result<const ClusterUniverse*> Session::UniverseFor(int top_l) {
  if (top_l < 1 || top_l > answers_->size()) {
    return Status::InvalidArgument("L out of range for this session");
  }
  // Widest cached universe with top_l' >= top_l serves the request (its
  // cluster set is a superset and all algorithms accept params.L <= top_l').
  auto it = universes_.lower_bound(top_l);
  if (it != universes_.end()) {
    ++universe_hits_;
    return it->second.get();
  }
  ++universe_misses_;
  QAG_ASSIGN_OR_RETURN(ClusterUniverse u,
                       ClusterUniverse::Build(answers_.get(), top_l));
  auto owned = std::make_unique<ClusterUniverse>(std::move(u));
  const ClusterUniverse* ptr = owned.get();
  universes_.emplace(top_l, std::move(owned));
  return ptr;
}

Result<Solution> Session::Summarize(const Params& params,
                                    const HybridOptions& options) {
  QAG_RETURN_IF_ERROR(ValidateParams(*answers_, params));
  QAG_ASSIGN_OR_RETURN(const ClusterUniverse* universe,
                       UniverseFor(params.L));
  return Hybrid::Run(*universe, params, options);
}

Result<const SolutionStore*> Session::Guidance(
    int top_l, const PrecomputeOptions& options) {
  auto it = stores_.find(top_l);
  if (it != stores_.end()) return it->second.get();
  QAG_ASSIGN_OR_RETURN(const ClusterUniverse* universe, UniverseFor(top_l));
  QAG_ASSIGN_OR_RETURN(SolutionStore store,
                       Precompute::Run(*universe, top_l, options));
  auto owned = std::make_unique<SolutionStore>(std::move(store));
  const SolutionStore* ptr = owned.get();
  stores_.emplace(top_l, std::move(owned));
  return ptr;
}

Result<Solution> Session::Retrieve(int top_l, int d, int k) {
  auto it = stores_.find(top_l);
  if (it == stores_.end()) {
    return Status::FailedPrecondition(
        "no guidance precomputed for this L; call Guidance() first");
  }
  return it->second->Retrieve(d, k);
}

Status Session::SaveGuidance(int top_l, const std::string& path) const {
  auto it = stores_.find(top_l);
  if (it == stores_.end()) {
    return Status::FailedPrecondition(
        "no guidance precomputed for this L; call Guidance() first");
  }
  return SaveSolutionStore(*it->second, path);
}

Status Session::LoadGuidance(int top_l, const std::string& path) {
  QAG_ASSIGN_OR_RETURN(const ClusterUniverse* universe, UniverseFor(top_l));
  QAG_ASSIGN_OR_RETURN(SolutionStore store,
                       LoadSolutionStore(universe, path));
  if (store.l() != top_l) {
    return Status::InvalidArgument(
        StrCat("file holds a grid for L=", store.l(), ", requested L=",
               top_l));
  }
  stores_[top_l] = std::make_unique<SolutionStore>(std::move(store));
  return Status::OK();
}

Session::CacheStats Session::cache_stats() const {
  CacheStats stats;
  stats.universes = static_cast<int>(universes_.size());
  stats.stores = static_cast<int>(stores_.size());
  stats.universe_hits = universe_hits_;
  stats.universe_misses = universe_misses_;
  return stats;
}

}  // namespace qagview::core
