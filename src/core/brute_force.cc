#include "core/brute_force.h"

#include <limits>
#include <vector>

#include "common/timer.h"

namespace qagview::core {

namespace {

class Searcher {
 public:
  Searcher(const ClusterUniverse& u, const Params& p, double budget)
      : u_(u), p_(p), budget_(budget) {
    n_ = u.num_clusters();
    words_ = static_cast<size_t>((n_ + 63) / 64);
    full_cover_ = p.L == 64 ? ~0ULL : ((1ULL << p.L) - 1);

    // Per-candidate top-L coverage masks.
    cover_mask_.resize(static_cast<size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      uint64_t mask = 0;
      for (int32_t e : u.covered(i)) {
        if (e >= p.L) break;  // ascending ids
        mask |= 1ULL << e;
      }
      cover_mask_[static_cast<size_t>(i)] = mask;
    }

    // Pairwise compatibility: distance >= D and incomparable.
    compat_.assign(static_cast<size_t>(n_) * words_, 0);
    for (int i = 0; i < n_; ++i) {
      for (int j = i + 1; j < n_; ++j) {
        const Cluster& a = u.cluster(i);
        const Cluster& b = u.cluster(j);
        if (Distance(a, b) >= p.D && !a.Covers(b) && !b.Covers(a)) {
          SetBit(i, j);
          SetBit(j, i);
        }
      }
    }

    element_refs_.assign(static_cast<size_t>(u.answer_set().size()), 0);
  }

  BruteForceResult Run() {
    // Seed with the always-feasible trivial solution so a time-budget abort
    // still returns something valid.
    int trivial = u_.FindId(Cluster::Trivial(u_.answer_set().num_attrs()));
    if (trivial >= 0) {
      best_ids_ = {trivial};
      best_avg_ = u_.Average(trivial);
    }
    std::vector<uint64_t> allowed(words_);
    for (int i = 0; i < n_; ++i) {
      allowed[static_cast<size_t>(i) / 64] |= 1ULL
                                              << (static_cast<size_t>(i) % 64);
    }
    Dfs(allowed, /*cover=*/0, /*depth=*/0);
    BruteForceResult out;
    out.solution = MakeSolution(u_, best_ids_);
    out.exact = !aborted_;
    out.nodes = nodes_;
    return out;
  }

 private:
  void SetBit(int row, int col) {
    compat_[static_cast<size_t>(row) * words_ +
            static_cast<size_t>(col) / 64] |=
        1ULL << (static_cast<size_t>(col) % 64);
  }

  void Push(int id) {
    for (int32_t e : u_.covered(id)) {
      if (element_refs_[static_cast<size_t>(e)]++ == 0) {
        sum_ += u_.answer_set().value(e);
        ++count_;
      }
    }
    chosen_.push_back(id);
  }

  void Pop(int id) {
    for (int32_t e : u_.covered(id)) {
      if (--element_refs_[static_cast<size_t>(e)] == 0) {
        sum_ -= u_.answer_set().value(e);
        --count_;
      }
    }
    chosen_.pop_back();
  }

  // Explores extensions of the current subset with candidates in `allowed`
  // (all of which are > every chosen id and pairwise-compatible with all
  // chosen clusters).
  void Dfs(const std::vector<uint64_t>& allowed, uint64_t cover, int depth) {
    if (aborted_) return;
    if ((++nodes_ & 0xFFF) == 0 && timer_.ElapsedSeconds() > budget_) {
      aborted_ = true;
      return;
    }
    if (depth == p_.k) return;

    // Coverage-completability pruning: the union of what the remaining
    // candidates can cover must close the gap.
    uint64_t reachable = cover;
    for (size_t w = 0; w < words_ && reachable != full_cover_; ++w) {
      uint64_t bits = allowed[w];
      while (bits) {
        int j = static_cast<int>(w * 64 + static_cast<size_t>(
                                              __builtin_ctzll(bits)));
        bits &= bits - 1;
        reachable |= cover_mask_[static_cast<size_t>(j)];
        if (reachable == full_cover_) break;
      }
    }
    if (reachable != full_cover_) return;

    std::vector<uint64_t> next(words_);
    for (size_t w = 0; w < words_; ++w) {
      uint64_t bits = allowed[w];
      while (bits) {
        size_t bit = static_cast<size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        int j = static_cast<int>(w * 64 + bit);

        Push(j);
        uint64_t new_cover = cover | cover_mask_[static_cast<size_t>(j)];
        if (new_cover == full_cover_ && count_ > 0) {
          double avg = sum_ / count_;
          if (avg > best_avg_) {
            best_avg_ = avg;
            best_ids_ = chosen_;
          }
        }
        // Allowed set for the subtree: ids > j, compatible with j, and
        // still compatible with everything chosen earlier.
        const uint64_t* row = &compat_[static_cast<size_t>(j) * words_];
        for (size_t w2 = 0; w2 < words_; ++w2) next[w2] = allowed[w2] & row[w2];
        // Mask off ids <= j.
        next[w] &= ~((bit == 63) ? ~0ULL : ((1ULL << (bit + 1)) - 1));
        for (size_t w2 = 0; w2 < w; ++w2) next[w2] = 0;

        Dfs(next, new_cover, depth + 1);
        Pop(j);
        if (aborted_) return;
      }
    }
  }

  const ClusterUniverse& u_;
  const Params& p_;
  double budget_;
  int n_ = 0;
  size_t words_ = 0;
  uint64_t full_cover_ = 0;
  std::vector<uint64_t> cover_mask_;
  std::vector<uint64_t> compat_;

  std::vector<int> element_refs_;
  double sum_ = 0.0;
  int count_ = 0;
  std::vector<int> chosen_;

  double best_avg_ = -std::numeric_limits<double>::infinity();
  std::vector<int> best_ids_;
  int64_t nodes_ = 0;
  bool aborted_ = false;
  WallTimer timer_;
};

}  // namespace

Result<BruteForceResult> BruteForce::Run(const ClusterUniverse& universe,
                                         const Params& params,
                                         const BruteForceOptions& options) {
  QAG_RETURN_IF_ERROR(ValidateParams(universe.answer_set(), params));
  if (params.L > 64) {
    return Status::InvalidArgument(
        "brute force supports L <= 64 (top-L coverage bitmask)");
  }
  if (params.L > universe.top_l()) {
    return Status::InvalidArgument(
        "universe was built for a smaller L than requested");
  }
  Searcher searcher(universe, params, options.time_budget_seconds);
  BruteForceResult result = searcher.Run();
  if (result.solution.cluster_ids.empty()) {
    return Status::Internal("brute force found no feasible solution");
  }
  QAG_RETURN_IF_ERROR(
      CheckFeasible(universe, result.solution.cluster_ids, params));
  return result;
}

}  // namespace qagview::core
