#include "core/cluster.h"

#include "common/string_util.h"

namespace qagview::core {

int Cluster::level() const {
  int stars = 0;
  for (int32_t v : pattern_) stars += (v == kWildcard);
  return stars;
}

bool Cluster::Covers(const Cluster& other) const {
  QAG_DCHECK(num_attrs() == other.num_attrs());
  for (size_t i = 0; i < pattern_.size(); ++i) {
    if (pattern_[i] != kWildcard && pattern_[i] != other.pattern_[i]) {
      return false;
    }
  }
  return true;
}

bool Cluster::CoversElement(const std::vector<int32_t>& attrs) const {
  QAG_DCHECK(pattern_.size() == attrs.size());
  for (size_t i = 0; i < pattern_.size(); ++i) {
    if (pattern_[i] != kWildcard && pattern_[i] != attrs[i]) return false;
  }
  return true;
}

Cluster Cluster::Lca(const Cluster& a, const Cluster& b) {
  QAG_DCHECK(a.num_attrs() == b.num_attrs());
  std::vector<int32_t> pattern(a.pattern_.size(), kWildcard);
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (a.pattern_[i] != kWildcard && a.pattern_[i] == b.pattern_[i]) {
      pattern[i] = a.pattern_[i];
    }
  }
  return Cluster(std::move(pattern));
}

Cluster Cluster::Generalize(const std::vector<int32_t>& attrs,
                            uint32_t mask) {
  std::vector<int32_t> pattern(attrs);
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (mask & (1u << i)) pattern[i] = kWildcard;
  }
  return Cluster(std::move(pattern));
}

std::string Cluster::ToString(const AnswerSet& s) const {
  std::vector<std::string> parts;
  parts.reserve(pattern_.size());
  for (int i = 0; i < num_attrs(); ++i) {
    parts.push_back(IsWildcard(i) ? "*" : s.ValueName(i, pattern_[
                                              static_cast<size_t>(i)]));
  }
  return StrCat("(", Join(parts, ", "), ")");
}

std::string Cluster::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(pattern_.size());
  for (int32_t v : pattern_) {
    parts.push_back(v == kWildcard ? "*" : std::to_string(v));
  }
  return StrCat("(", Join(parts, ", "), ")");
}

int Distance(const Cluster& a, const Cluster& b) {
  QAG_DCHECK(a.num_attrs() == b.num_attrs());
  int d = 0;
  for (int i = 0; i < a.num_attrs(); ++i) {
    int32_t x = a[i];
    int32_t y = b[i];
    d += (x == kWildcard || y == kWildcard || x != y);
  }
  return d;
}

int ElementDistance(const std::vector<int32_t>& a,
                    const std::vector<int32_t>& b) {
  QAG_DCHECK(a.size() == b.size());
  int d = 0;
  for (size_t i = 0; i < a.size(); ++i) d += (a[i] != b[i]);
  return d;
}

int DistanceToElement(const Cluster& c, const std::vector<int32_t>& attrs) {
  QAG_DCHECK(static_cast<size_t>(c.num_attrs()) == attrs.size());
  int d = 0;
  for (int i = 0; i < c.num_attrs(); ++i) {
    d += (c[i] == kWildcard || c[i] != attrs[static_cast<size_t>(i)]);
  }
  return d;
}

}  // namespace qagview::core
