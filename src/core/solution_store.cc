#include "core/solution_store.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"

namespace qagview::core {

SolutionStore::SolutionStore(const ClusterUniverse* universe, int l,
                             int k_max, std::vector<Trace> traces)
    : universe_(universe), l_(l), k_max_(k_max) {
  QAG_CHECK(universe != nullptr);
  for (Trace& trace : traces) {
    QAG_CHECK(!trace.states.empty());
    QAG_CHECK(trace.states.size() == trace.values.size());
    PerD per_d;

    // Per-state (size, value), sizes strictly decreasing by construction.
    int num_states = static_cast<int>(trace.states.size());
    for (int r = 0; r < num_states; ++r) {
      int sz = static_cast<int>(trace.states[static_cast<size_t>(r)].size());
      if (r > 0) {
        QAG_CHECK(sz <
                  per_d.size_value[static_cast<size_t>(r - 1)].first)
            << "state sizes must strictly decrease";
      }
      per_d.size_value.emplace_back(sz,
                                    trace.values[static_cast<size_t>(r)]);
      naive_entries_ += sz;  // what a per-(k,D) copy would store per state
    }
    per_d.min_size = per_d.size_value.back().first;

    // Continuity (Prop 6.1): each cluster appears in a contiguous run of
    // states [first, last]. Map state runs to k-intervals: state r serves
    // k in [size_r, size_{r-1} - 1]; state 0 serves [size_0, k_max].
    std::unordered_map<int, std::pair<int, int>> runs;  // id -> [first,last]
    for (int r = 0; r < num_states; ++r) {
      for (int id : trace.states[static_cast<size_t>(r)]) {
        auto [it, inserted] = runs.try_emplace(id, r, r);
        if (!inserted) {
          QAG_CHECK(it->second.second == r - 1)
              << "continuity violated: cluster " << id
              << " reappeared at state " << r;
          it->second.second = r;
        }
      }
    }

    auto state_k_hi = [&](int r) {
      return r == 0 ? std::max(k_max_, per_d.size_value[0].first)
                    : per_d.size_value[static_cast<size_t>(r - 1)].first - 1;
    };
    auto state_k_lo = [&](int r) {
      return per_d.size_value[static_cast<size_t>(r)].first;
    };

    std::vector<IntervalTree<int>::Entry> entries;
    entries.reserve(runs.size());
    for (const auto& [id, run] : runs) {
      int lo = state_k_lo(run.second);   // smallest k it serves
      int hi = state_k_hi(run.first);    // largest k it serves
      QAG_CHECK(lo <= hi);
      entries.push_back({lo, hi, id});
    }
    num_intervals_ += static_cast<int64_t>(entries.size());
    per_d.tree = IntervalTree<int>(std::move(entries));
    per_d_.emplace(trace.d, std::move(per_d));
  }
}

Result<SolutionStore> SolutionStore::FromParts(
    const ClusterUniverse* universe, int l, int k_max,
    std::vector<PartsPerD> parts) {
  if (universe == nullptr) {
    return Status::InvalidArgument("universe must not be null");
  }
  SolutionStore store;
  store.universe_ = universe;
  store.l_ = l;
  store.k_max_ = k_max;
  for (PartsPerD& part : parts) {
    if (part.size_value.empty()) {
      return Status::InvalidArgument(
          StrCat("D=", part.d, " has no replay states"));
    }
    for (size_t r = 1; r < part.size_value.size(); ++r) {
      if (part.size_value[r].first >= part.size_value[r - 1].first) {
        return Status::InvalidArgument(
            StrCat("D=", part.d, " state sizes must strictly decrease"));
      }
    }
    if (store.per_d_.count(part.d) != 0) {
      return Status::InvalidArgument(StrCat("duplicate D=", part.d));
    }
    PerD per_d;
    per_d.size_value = std::move(part.size_value);
    per_d.min_size = per_d.size_value.back().first;
    for (const auto& [sz, unused] : per_d.size_value) {
      store.naive_entries_ += sz;
    }
    std::vector<IntervalTree<int>::Entry> entries;
    entries.reserve(part.intervals.size());
    for (const IntervalRecord& record : part.intervals) {
      if (record.lo > record.hi || record.cluster_id < 0 ||
          record.cluster_id >= universe->num_clusters()) {
        return Status::InvalidArgument(
            StrCat("D=", part.d, " has a malformed interval record"));
      }
      entries.push_back({record.lo, record.hi, record.cluster_id});
    }
    store.num_intervals_ += static_cast<int64_t>(entries.size());
    per_d.tree = IntervalTree<int>(std::move(entries));
    store.per_d_.emplace(part.d, std::move(per_d));
  }
  return store;
}

int SolutionStore::num_attrs() const {
  return universe_->answer_set().num_attrs();
}

const std::vector<int32_t>& SolutionStore::ClusterPattern(
    int cluster_id) const {
  return universe_->cluster(cluster_id).pattern();
}

Result<std::vector<std::pair<int, double>>> SolutionStore::SizeValues(
    int d) const {
  QAG_ASSIGN_OR_RETURN(const PerD* per_d, FindD(d));
  return per_d->size_value;
}

Result<std::vector<SolutionStore::IntervalRecord>> SolutionStore::Intervals(
    int d) const {
  QAG_ASSIGN_OR_RETURN(const PerD* per_d, FindD(d));
  std::vector<IntervalRecord> out;
  out.reserve(per_d->tree.entries().size());
  for (const IntervalTree<int>::Entry& e : per_d->tree.entries()) {
    out.push_back({e.lo, e.hi, e.payload});
  }
  return out;
}

Result<const SolutionStore::PerD*> SolutionStore::FindD(int d) const {
  auto it = per_d_.find(d);
  if (it == per_d_.end()) {
    return Status::NotFound(StrCat("no precomputed solutions for D=", d));
  }
  return &it->second;
}

std::vector<int> SolutionStore::d_values() const {
  std::vector<int> out;
  out.reserve(per_d_.size());
  for (const auto& [d, unused] : per_d_) out.push_back(d);
  return out;
}

Result<int> SolutionStore::MinK(int d) const {
  QAG_ASSIGN_OR_RETURN(const PerD* per_d, FindD(d));
  return per_d->min_size;
}

Result<Solution> SolutionStore::Retrieve(int d, int k) const {
  QAG_ASSIGN_OR_RETURN(const PerD* per_d, FindD(d));
  if (k < per_d->min_size) {
    return Status::OutOfRange(
        StrCat("no precomputed solution for k=", k, " at D=", d,
               " (smallest stored size is ", per_d->min_size, ")"));
  }
  // Queries above the stored range clamp to the largest-k state.
  int hi_cap = std::max(k_max_, per_d->size_value.front().first);
  std::vector<int> ids = per_d->tree.Collect(std::min(k, hi_cap));
  return MakeSolution(*universe_, std::move(ids));
}

Result<double> SolutionStore::Value(int d, int k) const {
  QAG_ASSIGN_OR_RETURN(const PerD* per_d, FindD(d));
  if (k < per_d->min_size) {
    return Status::OutOfRange(
        StrCat("no precomputed value for k=", k, " at D=", d));
  }
  // First state (descending sizes) with size <= k.
  const auto& sv = per_d->size_value;
  auto it = std::lower_bound(
      sv.begin(), sv.end(), k,
      [](const std::pair<int, double>& a, int key) { return a.first > key; });
  QAG_CHECK(it != sv.end());
  return it->second;
}

}  // namespace qagview::core
