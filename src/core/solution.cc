#include "core/solution.h"

#include "common/string_util.h"

namespace qagview::core {

std::string Params::ToString() const {
  return StrCat("k=", k, ", L=", L, ", D=", D);
}

Status ValidateParams(const AnswerSet& s, const Params& params) {
  if (params.k < 1) {
    return Status::InvalidArgument(StrCat("k must be >= 1, got ", params.k));
  }
  if (params.L < 1 || params.L > s.size()) {
    return Status::InvalidArgument(
        StrCat("L must be in [1, n=", s.size(), "], got ", params.L));
  }
  if (params.D < 0 || params.D > s.num_attrs()) {
    return Status::InvalidArgument(
        StrCat("D must be in [0, m=", s.num_attrs(), "], got ", params.D));
  }
  return Status::OK();
}

Solution MakeSolution(const ClusterUniverse& universe, std::vector<int> ids) {
  Solution out;
  out.cluster_ids = std::move(ids);
  std::vector<char> covered(static_cast<size_t>(universe.answer_set().size()),
                            0);
  double min_value = 0.0;
  for (int id : out.cluster_ids) {
    for (int32_t e : universe.covered(id)) {
      if (!covered[static_cast<size_t>(e)]) {
        covered[static_cast<size_t>(e)] = 1;
        double v = universe.answer_set().value(e);
        out.covered_sum += v;
        if (out.covered_count == 0 || v < min_value) min_value = v;
        ++out.covered_count;
      }
    }
  }
  out.average =
      out.covered_count == 0 ? 0.0 : out.covered_sum / out.covered_count;
  out.covered_min = min_value;
  return out;
}

Status CheckFeasible(const ClusterUniverse& universe,
                     const std::vector<int>& ids, const Params& params) {
  // (1) Size.
  if (static_cast<int>(ids.size()) > params.k) {
    return Status::FailedPrecondition(
        StrCat("size violation: ", ids.size(), " clusters > k=", params.k));
  }
  // (2) Coverage of the top-L elements.
  std::vector<char> top_covered(static_cast<size_t>(params.L), 0);
  for (int id : ids) {
    for (int32_t e : universe.covered(id)) {
      if (e >= params.L) break;  // covered lists are ascending
      top_covered[static_cast<size_t>(e)] = 1;
    }
  }
  for (int i = 0; i < params.L; ++i) {
    if (!top_covered[static_cast<size_t>(i)]) {
      return Status::FailedPrecondition(
          StrCat("coverage violation: top element ", i + 1, " not covered"));
    }
  }
  // (3) Pairwise distance and (4) antichain.
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      const Cluster& a = universe.cluster(ids[i]);
      const Cluster& b = universe.cluster(ids[j]);
      int d = Distance(a, b);
      if (d < params.D) {
        return Status::FailedPrecondition(
            StrCat("distance violation: d(", a.ToString(), ", ",
                   b.ToString(), ")=", d, " < D=", params.D));
      }
      if (a.Covers(b) || b.Covers(a)) {
        return Status::FailedPrecondition(
            StrCat("antichain violation: ", a.ToString(), " and ",
                   b.ToString(), " are comparable"));
      }
    }
  }
  return Status::OK();
}

}  // namespace qagview::core
