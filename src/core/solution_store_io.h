#ifndef QAGVIEW_CORE_SOLUTION_STORE_IO_H_
#define QAGVIEW_CORE_SOLUTION_STORE_IO_H_

#include <string>

#include "common/result.h"
#include "core/solution_store.h"

namespace qagview::core {

/// \brief Persistence for precomputed solution stores (§6.2).
///
/// The paper's prototype keeps precomputed (k, D) grids in memory and in
/// PostgreSQL so later requests retrieve at interactive speed; this module
/// is the equivalent for our in-process substrate: a store serializes to a
/// compact line-based text format and reloads against a freshly built
/// ClusterUniverse in a later process.
///
/// Clusters are serialized as attribute-code *patterns*, not universe ids:
/// ids depend on universe construction order, while patterns are stable
/// under rebuilds from the same answer set. Loading resolves each pattern
/// through ClusterUniverse::FindId and fails cleanly when the store does
/// not match the universe (different query, different L, edited file).
///
/// Format (version 1):
///   qagview-store 1 <L> <k_max> <num_attrs> <num_d>
///   d <D> states <S> intervals <I>
///   s <size> <value>                   (x S)
///   i <lo> <hi> <c1> <c2> ... <cm>     (x I; wildcard rendered as '*')
std::string SerializeSolutionStore(const SolutionStore& store);

/// Parses `text` and rebuilds the store against `universe` (which must
/// outlive the result). The universe must have been built from the same
/// answer set with top_l >= the store's L. The text is treated as
/// untrusted disk state (warm-start snapshots survive process restarts):
/// every count and coordinate is range-checked before any narrowing cast,
/// and truncation, bit flips, lying headers, or a wrong version fail with
/// a clean InvalidArgument — never a crash, never a partially built store
/// (SolutionStore::FromParts is all-or-nothing).
Result<SolutionStore> DeserializeSolutionStore(const ClusterUniverse* universe,
                                               const std::string& text);

/// File convenience wrappers.
Status SaveSolutionStore(const SolutionStore& store, const std::string& path);
Result<SolutionStore> LoadSolutionStore(const ClusterUniverse* universe,
                                        const std::string& path);

/// Reads just the header of a saved store and returns its recorded L,
/// without needing a universe. Lets a caller build a wide-enough universe
/// before deserializing (Session::LoadGuidance accepts files holding a
/// wider grid than requested).
Result<int> PeekSolutionStoreL(const std::string& path);

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_SOLUTION_STORE_IO_H_
