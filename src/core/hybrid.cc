#include "core/hybrid.h"

namespace qagview::core {

Result<Solution> Hybrid::Run(const ClusterUniverse& universe,
                             const Params& params,
                             const HybridOptions& options) {
  QAG_RETURN_IF_ERROR(ValidateParams(universe.answer_set(), params));
  if (options.c < 2) {
    return Status::InvalidArgument("Hybrid needs c >= 2");
  }
  FixedOrderOptions fo;
  fo.use_delta_judgment = options.use_delta_judgment;
  QAG_ASSIGN_OR_RETURN(
      std::vector<int> initial,
      FixedOrder::RunPhase(universe, options.c * params.k, params.L, params.D,
                           fo));
  BottomUpOptions bu;
  bu.use_delta_judgment = options.use_delta_judgment;
  bu.merge_rule = options.merge_rule;
  return BottomUp::RunFrom(universe, params, initial, bu);
}

}  // namespace qagview::core
