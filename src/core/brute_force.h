#ifndef QAGVIEW_CORE_BRUTE_FORCE_H_
#define QAGVIEW_CORE_BRUTE_FORCE_H_

#include <cstdint>
#include <limits>

#include "common/result.h"
#include "core/solution.h"

namespace qagview::core {

struct BruteForceOptions {
  /// Abort the search after this much wall time; the result is then marked
  /// inexact (best found so far). Exhaustive search is exponential — this is
  /// the guard that keeps the Figure-5 comparison bench bounded.
  double time_budget_seconds = std::numeric_limits<double>::infinity();
};

struct BruteForceResult {
  Solution solution;
  /// True iff the search space was fully explored within the time budget.
  bool exact = true;
  /// Number of search nodes visited.
  int64_t nodes = 0;
};

/// \brief Exact optimal solver for the Max-Avg problem (the paper's
/// brute-force baseline, §7.1).
///
/// Enumerates feasible subsets of the cluster universe of size <= k by
/// depth-first search over a pairwise-compatibility bitset graph
/// (distance >= D and incomparability are binary constraints), pruning
/// branches whose remaining candidates cannot complete top-L coverage.
/// Every coverage-complete node is evaluated — supersets can improve
/// Max-Avg by pulling in high-valued redundant elements, so the search
/// does not stop at the first feasible subset.
///
/// Requires L <= 64 (coverage masks). Exponential in k; use only on the
/// small instances of the Figure-5 experiment.
class BruteForce {
 public:
  static Result<BruteForceResult> Run(const ClusterUniverse& universe,
                                      const Params& params,
                                      const BruteForceOptions& options = {});
};

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_BRUTE_FORCE_H_
