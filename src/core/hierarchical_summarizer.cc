#include "core/hierarchical_summarizer.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/string_util.h"

namespace qagview::core {

HierarchicalSummarizer::HierarchicalSummarizer(const AnswerSet* s,
                                               HierarchySet hierarchies)
    : s_(s), hierarchies_(std::move(hierarchies)) {
  QAG_CHECK(s != nullptr);
  QAG_CHECK(hierarchies_.num_attrs() == s->num_attrs())
      << "one hierarchy per attribute required";
  // Every attribute code must be bound to a leaf.
  for (int a = 0; a < s->num_attrs(); ++a) {
    for (int32_t code = 0; code < s->domain_size(a); ++code) {
      QAG_CHECK(hierarchies_.hierarchy(a).LeafNode(code) >= 0)
          << "attribute " << a << " code " << code << " has no leaf";
    }
  }
}

std::vector<int> HierarchicalSummarizer::Covered(
    const HierarchicalCluster& c) const {
  std::vector<int> out;
  for (int e = 0; e < s_->size(); ++e) {
    if (hierarchies_.Covers(c, hierarchies_.FromElement(s_->element(e).attrs))) {
      out.push_back(e);
    }
  }
  return out;
}

HierarchicalSummarizer::Stats HierarchicalSummarizer::CoveredStats(
    const HierarchicalCluster& c, std::vector<char>* covered_scratch) const {
  Stats stats;
  for (int e = 0; e < s_->size(); ++e) {
    if ((*covered_scratch)[static_cast<size_t>(e)]) continue;
    if (hierarchies_.Covers(c,
                            hierarchies_.FromElement(s_->element(e).attrs))) {
      stats.sum += s_->value(e);
      ++stats.count;
    }
  }
  return stats;
}

Status HierarchicalSummarizer::CheckFeasible(
    const std::vector<HierarchicalCluster>& clusters,
    const Params& params) const {
  if (static_cast<int>(clusters.size()) > params.k) {
    return Status::FailedPrecondition("size violation");
  }
  for (int e = 0; e < params.L; ++e) {
    HierarchicalCluster leaf = hierarchies_.FromElement(s_->element(e).attrs);
    bool covered = false;
    for (const HierarchicalCluster& c : clusters) {
      covered = covered || hierarchies_.Covers(c, leaf);
    }
    if (!covered) {
      return Status::FailedPrecondition(
          StrCat("coverage violation: top element ", e + 1));
    }
  }
  for (size_t i = 0; i < clusters.size(); ++i) {
    for (size_t j = i + 1; j < clusters.size(); ++j) {
      if (hierarchies_.Distance(clusters[i], clusters[j]) < params.D) {
        return Status::FailedPrecondition("distance violation");
      }
      if (hierarchies_.Covers(clusters[i], clusters[j]) ||
          hierarchies_.Covers(clusters[j], clusters[i])) {
        return Status::FailedPrecondition("antichain violation");
      }
    }
  }
  return Status::OK();
}

Result<HierarchicalSolution> HierarchicalSummarizer::Run(
    const Params& params) const {
  QAG_RETURN_IF_ERROR(ValidateParams(*s_, params));

  std::vector<HierarchicalCluster> clusters;
  std::vector<char> covered(static_cast<size_t>(s_->size()), 0);
  double covered_sum = 0.0;
  int covered_count = 0;

  auto commit = [&](const HierarchicalCluster& c) {
    // Absorb coverage and drop subsumed clusters (incomparability).
    for (int e = 0; e < s_->size(); ++e) {
      if (covered[static_cast<size_t>(e)]) continue;
      if (hierarchies_.Covers(c,
                              hierarchies_.FromElement(s_->element(e).attrs))) {
        covered[static_cast<size_t>(e)] = 1;
        covered_sum += s_->value(e);
        ++covered_count;
      }
    }
    clusters.erase(
        std::remove_if(clusters.begin(), clusters.end(),
                       [&](const HierarchicalCluster& other) {
                         return hierarchies_.Covers(c, other);
                       }),
        clusters.end());
    clusters.push_back(c);
  };

  for (int i = 0; i < params.L; ++i) {
    if (covered[static_cast<size_t>(i)]) continue;
    HierarchicalCluster leaf = hierarchies_.FromElement(s_->element(i).attrs);

    // Candidate partners under the Fixed-Order policy.
    std::vector<int> partners;
    if (static_cast<int>(clusters.size()) < params.k) {
      bool distance_ok = true;
      for (size_t c = 0; c < clusters.size(); ++c) {
        if (hierarchies_.Distance(clusters[c], leaf) < params.D) {
          distance_ok = false;
          partners.push_back(static_cast<int>(c));
        }
      }
      if (distance_ok) {
        commit(leaf);
        continue;
      }
    } else {
      for (size_t c = 0; c < clusters.size(); ++c) {
        partners.push_back(static_cast<int>(c));
      }
    }

    // Greedy merge: the per-attribute hierarchy LCA maximizing the
    // tentative solution average.
    double best_score = -std::numeric_limits<double>::infinity();
    HierarchicalCluster best;
    for (int c : partners) {
      HierarchicalCluster merged =
          hierarchies_.Lca(clusters[static_cast<size_t>(c)], leaf);
      std::vector<char> scratch = covered;
      Stats added = CoveredStats(merged, &scratch);
      int total = covered_count + added.count;
      double score = total == 0 ? 0.0 : (covered_sum + added.sum) / total;
      if (score > best_score) {
        best_score = score;
        best = merged;
      }
    }
    commit(best);
  }

  HierarchicalSolution solution;
  solution.clusters = clusters;
  solution.covered_sum = covered_sum;
  solution.covered_count = covered_count;
  solution.average =
      covered_count == 0 ? 0.0 : covered_sum / covered_count;
  QAG_RETURN_IF_ERROR(CheckFeasible(solution.clusters, params));
  return solution;
}

Result<HierarchicalSolution> HierarchicalSummarizer::RunBottomUp(
    const Params& params) const {
  QAG_RETURN_IF_ERROR(ValidateParams(*s_, params));

  std::vector<HierarchicalCluster> clusters;
  std::vector<char> covered(static_cast<size_t>(s_->size()), 0);
  double covered_sum = 0.0;
  int covered_count = 0;

  auto commit = [&](const HierarchicalCluster& c) {
    for (int e = 0; e < s_->size(); ++e) {
      if (covered[static_cast<size_t>(e)]) continue;
      if (hierarchies_.Covers(
              c, hierarchies_.FromElement(s_->element(e).attrs))) {
        covered[static_cast<size_t>(e)] = 1;
        covered_sum += s_->value(e);
        ++covered_count;
      }
    }
    clusters.erase(
        std::remove_if(clusters.begin(), clusters.end(),
                       [&](const HierarchicalCluster& other) {
                         return hierarchies_.Covers(c, other);
                       }),
        clusters.end());
    clusters.push_back(c);
  };

  // Start: top-L leaf singletons (group-by answers are distinct tuples).
  for (int i = 0; i < params.L; ++i) {
    commit(hierarchies_.FromElement(s_->element(i).attrs));
  }

  // Greedily merges the best pair among `pairs`; returns false on empty.
  auto merge_best = [&](const std::vector<std::pair<int, int>>& pairs) {
    if (pairs.empty()) return false;
    double best_score = -std::numeric_limits<double>::infinity();
    HierarchicalCluster best;
    for (const auto& [i, j] : pairs) {
      HierarchicalCluster merged =
          hierarchies_.Lca(clusters[static_cast<size_t>(i)],
                           clusters[static_cast<size_t>(j)]);
      std::vector<char> scratch = covered;
      Stats added = CoveredStats(merged, &scratch);
      int total = covered_count + added.count;
      double score = total == 0 ? 0.0 : (covered_sum + added.sum) / total;
      if (score > best_score) {
        best_score = score;
        best = merged;
      }
    }
    commit(best);
    return true;
  };

  // Phase 1: repair distance violations.
  while (true) {
    std::vector<std::pair<int, int>> close_pairs;
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        if (hierarchies_.Distance(clusters[i], clusters[j]) < params.D) {
          close_pairs.emplace_back(static_cast<int>(i),
                                   static_cast<int>(j));
        }
      }
    }
    if (!merge_best(close_pairs)) break;
  }

  // Phase 2: shrink to k.
  while (static_cast<int>(clusters.size()) > params.k) {
    std::vector<std::pair<int, int>> all_pairs;
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        all_pairs.emplace_back(static_cast<int>(i), static_cast<int>(j));
      }
    }
    QAG_CHECK(merge_best(all_pairs));
  }

  HierarchicalSolution solution;
  solution.clusters = clusters;
  solution.covered_sum = covered_sum;
  solution.covered_count = covered_count;
  solution.average = covered_count == 0 ? 0.0 : covered_sum / covered_count;
  QAG_RETURN_IF_ERROR(CheckFeasible(solution.clusters, params));
  return solution;
}

std::string HierarchicalSummarizer::Render(
    const HierarchicalSolution& solution) const {
  std::ostringstream out;
  for (const HierarchicalCluster& c : solution.clusters) {
    std::vector<int> members = Covered(c);
    double sum = 0.0;
    for (int e : members) sum += s_->value(e);
    out << hierarchies_.Render(c) << "\tavg "
        << FormatDouble(members.empty() ? 0.0 : sum / members.size(), 2)
        << "\t" << members.size() << " tuples\n";
  }
  out << "solution avg = " << FormatDouble(solution.average, 4) << " over "
      << solution.covered_count << " covered tuples\n";
  return out.str();
}

}  // namespace qagview::core
