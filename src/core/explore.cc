#include "core/explore.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace qagview::core {

TwoLayerView BuildTwoLayerView(const ClusterUniverse& universe,
                               const Solution& solution) {
  TwoLayerView view;
  view.solution_average = solution.average;
  view.solution_count = solution.covered_count;
  const AnswerSet& s = universe.answer_set();
  for (int id : solution.cluster_ids) {
    ClusterView cv;
    cv.cluster_id = id;
    cv.pattern = universe.cluster(id).ToString(s);
    cv.average = universe.Average(id);
    cv.count = universe.covered_count(id);
    cv.top_count = universe.top_covered_count(id);
    for (int32_t e : universe.covered(id)) cv.member_ranks.push_back(e + 1);
    view.clusters.push_back(std::move(cv));
  }
  std::sort(view.clusters.begin(), view.clusters.end(),
            [](const ClusterView& a, const ClusterView& b) {
              if (a.average != b.average) return a.average > b.average;
              return a.pattern < b.pattern;
            });
  return view;
}

std::string RenderSummary(const ClusterUniverse& universe,
                          const Solution& solution) {
  TwoLayerView view = BuildTwoLayerView(universe, solution);
  const AnswerSet& s = universe.answer_set();
  std::ostringstream out;
  out << Join(s.attr_names(), "\t") << "\tavg val\t#tuples\n";
  for (const ClusterView& cv : view.clusters) {
    std::string row = cv.pattern.substr(1, cv.pattern.size() - 2);  // drop ()
    // The pattern renders as "a, b, c"; reuse it tab-separated.
    std::string cells;
    for (const std::string& part : Split(row, ',')) {
      if (!cells.empty()) cells += "\t";
      cells += std::string(StripWhitespace(part));
    }
    out << cells << "\t" << FormatDouble(cv.average, 2) << "\t" << cv.count
        << "\n";
  }
  out << "solution avg = " << FormatDouble(view.solution_average, 4)
      << " over " << view.solution_count << " covered tuples\n";
  return out.str();
}

std::string RenderExpanded(const ClusterUniverse& universe,
                           const Solution& solution, int max_members) {
  TwoLayerView view = BuildTwoLayerView(universe, solution);
  const AnswerSet& s = universe.answer_set();
  std::ostringstream out;
  out << Join(s.attr_names(), "\t") << "\tval\trank\n";
  for (const ClusterView& cv : view.clusters) {
    out << "▼ " << cv.pattern << "\tavg " << FormatDouble(cv.average, 2)
        << "\t(" << cv.count << " tuples, " << cv.top_count << " in top-"
        << universe.top_l() << ")\n";
    int shown = 0;
    for (int rank : cv.member_ranks) {
      if (max_members > 0 && shown >= max_members) {
        out << "    ... (" << cv.member_ranks.size() - shown
            << " more)\n";
        break;
      }
      const Element& e = s.element(rank - 1);
      out << "    ";
      for (int a = 0; a < s.num_attrs(); ++a) {
        if (a) out << "\t";
        out << s.ValueName(a, e.attrs[static_cast<size_t>(a)]);
      }
      out << "\t" << FormatDouble(e.value, 2) << "\t" << rank << "\n";
      ++shown;
    }
  }
  return out.str();
}

}  // namespace qagview::core
