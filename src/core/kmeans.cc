#include "core/kmeans.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/random.h"
#include "core/cluster.h"

namespace qagview::core {

KModesResult KModes(const std::vector<std::vector<int32_t>>& points, int k,
                    uint64_t seed, int max_iters) {
  KModesResult result;
  int n = static_cast<int>(points.size());
  QAG_CHECK(n > 0 && k > 0);
  k = std::min(k, n);
  size_t m = points[0].size();

  // Random distinct seeds.
  Rng rng(seed);
  std::vector<int> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  rng.Shuffle(&order);
  result.centroids.clear();
  for (int c = 0; c < k; ++c) {
    result.centroids.push_back(points[static_cast<size_t>(order[
        static_cast<size_t>(c)])]);
  }

  result.assignment.assign(static_cast<size_t>(n), -1);
  for (int iter = 0; iter < max_iters; ++iter) {
    ++result.iterations;
    bool changed = false;
    // Assignment step.
    for (int i = 0; i < n; ++i) {
      int best = -1;
      int best_d = std::numeric_limits<int>::max();
      for (size_t c = 0; c < result.centroids.size(); ++c) {
        int d = ElementDistance(points[static_cast<size_t>(i)],
                                result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = static_cast<int>(c);
        }
      }
      if (result.assignment[static_cast<size_t>(i)] != best) {
        result.assignment[static_cast<size_t>(i)] = best;
        changed = true;
      }
    }
    if (!changed) break;
    // Update step: per-attribute mode of each cluster's members.
    for (size_t c = 0; c < result.centroids.size(); ++c) {
      for (size_t a = 0; a < m; ++a) {
        std::unordered_map<int32_t, int> counts;
        for (int i = 0; i < n; ++i) {
          if (result.assignment[static_cast<size_t>(i)] ==
              static_cast<int>(c)) {
            ++counts[points[static_cast<size_t>(i)][a]];
          }
        }
        if (counts.empty()) continue;  // empty cluster: keep old centroid
        int32_t mode = result.centroids[c][a];
        int best_count = -1;
        for (const auto& [value, count] : counts) {
          if (count > best_count ||
              (count == best_count && value < mode)) {
            best_count = count;
            mode = value;
          }
        }
        result.centroids[c][a] = mode;
      }
    }
  }
  return result;
}

std::vector<std::vector<int32_t>> KModesSeedPatterns(const AnswerSet& s,
                                                     int top_l, int k,
                                                     uint64_t seed) {
  std::vector<std::vector<int32_t>> points;
  points.reserve(static_cast<size_t>(top_l));
  for (int i = 0; i < top_l; ++i) points.push_back(s.element(i).attrs);
  KModesResult clusters = KModes(points, k, seed);

  // Minimum covering pattern per cluster = LCA of its members.
  std::vector<std::vector<int32_t>> patterns;
  for (size_t c = 0; c < clusters.centroids.size(); ++c) {
    Cluster lca;
    bool first = true;
    for (int i = 0; i < top_l; ++i) {
      if (clusters.assignment[static_cast<size_t>(i)] != static_cast<int>(c)) {
        continue;
      }
      Cluster singleton(points[static_cast<size_t>(i)]);
      lca = first ? singleton : Cluster::Lca(lca, singleton);
      first = false;
    }
    if (!first) patterns.push_back(lca.pattern());
  }
  return patterns;
}

}  // namespace qagview::core
