#include "core/fixed_order.h"

#include <limits>

#include "common/random.h"
#include "core/greedy_state.h"
#include "core/kmeans.h"

namespace qagview::core {

namespace {

// Merges candidate cluster `id` into the best existing cluster among the
// positions in `partners` (tentative-solution-average rule) and commits.
void MergeInto(GreedyState* state, int id, const std::vector<int>& partners) {
  QAG_DCHECK(!partners.empty());
  const ClusterUniverse& u = state->universe();
  double best_score = -std::numeric_limits<double>::infinity();
  int best_lca = -1;
  for (int pos : partners) {
    int lca =
        u.LcaId(state->clusters()[static_cast<size_t>(pos)], id);
    double score = state->TentativeAverage(lca);
    if (score > best_score) {
      best_score = score;
      best_lca = lca;
    }
  }
  state->AddCluster(best_lca);
}

// Processes one candidate cluster id through the Fixed-Order state machine.
void ProcessCandidate(GreedyState* state, int id, int budget,
                      int distance_d) {
  const ClusterUniverse& u = state->universe();
  const Cluster& c = u.cluster(id);

  // Skip when an existing cluster subsumes the candidate.
  for (int other : state->clusters()) {
    if (u.cluster(other).Covers(c)) return;
  }

  if (state->size() < budget) {
    // Collect clusters violating the distance constraint against c.
    std::vector<int> violating;
    for (int pos = 0; pos < state->size(); ++pos) {
      if (Distance(u.cluster(state->clusters()[static_cast<size_t>(pos)]),
                   c) < distance_d) {
        violating.push_back(pos);
      }
    }
    if (violating.empty()) {
      state->AddCluster(id);
    } else {
      MergeInto(state, id, violating);
    }
    return;
  }

  // At capacity: merge into the best cluster overall.
  std::vector<int> all(static_cast<size_t>(state->size()));
  for (int pos = 0; pos < state->size(); ++pos) {
    all[static_cast<size_t>(pos)] = pos;
  }
  MergeInto(state, id, all);
}

}  // namespace

Result<std::vector<int>> FixedOrder::RunPhase(const ClusterUniverse& universe,
                                              int budget, int top_l,
                                              int distance_d,
                                              const FixedOrderOptions& options) {
  if (budget < 1) return Status::InvalidArgument("budget must be >= 1");
  if (top_l < 1 || top_l > universe.top_l()) {
    return Status::InvalidArgument(
        "top_l out of range for this cluster universe");
  }
  GreedyState state(&universe, options.use_delta_judgment);

  // Seed processing (§5.2 variants).
  if (options.seeding == FixedOrderOptions::Seeding::kRandom) {
    Rng rng(options.seed);
    std::vector<int> indices(static_cast<size_t>(top_l));
    for (int i = 0; i < top_l; ++i) indices[static_cast<size_t>(i)] = i;
    rng.Shuffle(&indices);
    int seeds = std::min(budget, top_l);
    for (int i = 0; i < seeds; ++i) {
      int e = indices[static_cast<size_t>(i)];
      if (!state.ElementCovered(e)) {
        ProcessCandidate(&state, universe.singleton_id(e), budget, distance_d);
      }
    }
  } else if (options.seeding == FixedOrderOptions::Seeding::kKMeans) {
    std::vector<std::vector<int32_t>> patterns = KModesSeedPatterns(
        universe.answer_set(), top_l, budget, options.seed);
    for (const std::vector<int32_t>& pattern : patterns) {
      int id = universe.FindId(Cluster(pattern));
      QAG_CHECK(id >= 0) << "k-modes pattern missing from universe";
      ProcessCandidate(&state, id, budget, distance_d);
    }
  }

  // Main sweep over the top-L elements in descending-value order.
  for (int i = 0; i < top_l; ++i) {
    if (state.ElementCovered(i)) continue;
    ProcessCandidate(&state, universe.singleton_id(i), budget, distance_d);
  }
  return state.clusters();
}

Result<Solution> FixedOrder::Run(const ClusterUniverse& universe,
                                 const Params& params,
                                 const FixedOrderOptions& options) {
  QAG_RETURN_IF_ERROR(ValidateParams(universe.answer_set(), params));
  if (params.L > universe.top_l()) {
    return Status::InvalidArgument(
        "universe was built for a smaller L than requested");
  }
  QAG_ASSIGN_OR_RETURN(
      std::vector<int> ids,
      RunPhase(universe, params.k, params.L, params.D, options));
  Solution solution = MakeSolution(universe, std::move(ids));
  QAG_CHECK_OK(CheckFeasible(universe, solution.cluster_ids, params));
  return solution;
}

}  // namespace qagview::core
