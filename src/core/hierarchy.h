#ifndef QAGVIEW_CORE_HIERARCHY_H_
#define QAGVIEW_CORE_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/answer_set.h"

namespace qagview::core {

/// \brief A concept hierarchy over one attribute's domain (Appendix A.6):
/// a rooted tree whose leaves are the attribute's values and whose internal
/// nodes are ranges/categories (e.g. age [20,40), date 1996-Q1).
///
/// Generalization replaces a value not with '*' but with an ancestor node;
/// the root plays the role of '*'. LCA queries are O(log n) via binary
/// lifting [18].
class ConceptHierarchy {
 public:
  ConceptHierarchy() = default;

  /// Adds the root (exactly one, first) or a child node. Returns node id.
  int AddNode(const std::string& label, int parent = -1);

  /// Declares node as the leaf representing attribute code `code`.
  /// Codes must be bound injectively.
  Status BindLeaf(int node, int32_t code);

  /// Builds the lifting tables; must be called before Lca/IsAncestor.
  Status Finalize();

  int num_nodes() const { return static_cast<int>(parent_.size()); }
  int root() const { return 0; }
  int parent(int node) const { return parent_[static_cast<size_t>(node)]; }
  int depth(int node) const { return depth_[static_cast<size_t>(node)]; }
  const std::string& label(int node) const {
    return labels_[static_cast<size_t>(node)];
  }
  bool is_leaf(int node) const {
    return leaf_code_[static_cast<size_t>(node)] >= 0;
  }
  int32_t leaf_code(int node) const {
    return leaf_code_[static_cast<size_t>(node)];
  }

  /// Node of an attribute code (the inverse of BindLeaf); -1 if unbound.
  int LeafNode(int32_t code) const;

  /// Lowest common ancestor of two nodes, O(log n).
  int Lca(int a, int b) const;

  /// True iff `ancestor` is on the root path of `node` (inclusive).
  bool IsAncestor(int ancestor, int node) const;

  /// Builds a balanced binary range hierarchy over ordered leaf labels
  /// (codes 0..n-1 in order); internal nodes are labeled "[lo..hi]" using
  /// the boundary leaf labels — e.g. the age/date trees of Figures 11/12.
  static ConceptHierarchy BinaryRanges(
      const std::vector<std::string>& leaf_labels);

  /// Degenerate hierarchy: a root over n flat leaves — equivalent to the
  /// plain '*' semantics. Leaves are labeled "v0", "v1", ...
  static ConceptHierarchy Flat(int num_leaves);

  /// Flat hierarchy with the given leaf labels (code i = leaf i).
  static ConceptHierarchy Flat(const std::vector<std::string>& leaf_labels);

  /// Automatically builds a fanout-ary range hierarchy over leaves given in
  /// display order (Appendix A.6 lists automatic construction as an
  /// orthogonal future direction). leaf_codes[i] is the attribute code
  /// bound to leaf i. When `weights` is non-empty (one weight per leaf),
  /// group boundaries balance total weight — equi-depth ranges — instead of
  /// leaf counts. Internal nodes are labeled "[first..last]".
  static Result<ConceptHierarchy> WeightedRanges(
      const std::vector<std::string>& leaf_labels,
      const std::vector<int32_t>& leaf_codes,
      const std::vector<double>& weights, int fanout);

 private:
  std::vector<int> parent_;
  std::vector<int> depth_;
  std::vector<std::string> labels_;
  std::vector<int32_t> leaf_code_;       // -1 for internal nodes
  std::vector<int> code_to_node_;
  std::vector<std::vector<int>> up_;     // binary lifting: up_[j][v]
  bool finalized_ = false;
};

/// Options for AutoHierarchyForAttribute.
struct AutoHierarchyOptions {
  /// Children per internal range node (>= 2).
  int fanout = 2;
  /// Balance range boundaries by value frequency in the answer set
  /// (equi-depth) instead of by distinct-value count (equi-width).
  bool weight_by_frequency = false;
};

/// Derives a concept hierarchy for one attribute of an answer set — the
/// automatic construction Appendix A.6 leaves as future work. Leaves are
/// the attribute's active-domain values, ordered numerically when every
/// value name parses as a number (else lexicographically), so the generated
/// ranges read naturally for ages, years, and buckets.
Result<ConceptHierarchy> AutoHierarchyForAttribute(
    const AnswerSet& s, int attr,
    const AutoHierarchyOptions& options = AutoHierarchyOptions());

/// \brief Hierarchical generalization of Cluster: per attribute, a node in
/// that attribute's concept hierarchy (root = '*', leaf = concrete value).
struct HierarchicalCluster {
  std::vector<int> nodes;

  bool operator==(const HierarchicalCluster& other) const {
    return nodes == other.nodes;
  }
};

/// \brief The per-attribute hierarchies of an answer set plus the
/// generalized cluster operations (cover / LCA / distance) of Appendix A.6.
class HierarchySet {
 public:
  explicit HierarchySet(std::vector<ConceptHierarchy> per_attr)
      : per_attr_(std::move(per_attr)) {}

  int num_attrs() const { return static_cast<int>(per_attr_.size()); }
  const ConceptHierarchy& hierarchy(int a) const {
    return per_attr_[static_cast<size_t>(a)];
  }

  /// The singleton hierarchical cluster of an element (all leaves).
  HierarchicalCluster FromElement(const std::vector<int32_t>& attrs) const;

  /// a covers b iff per attribute, a's node is an ancestor of b's node.
  bool Covers(const HierarchicalCluster& a,
              const HierarchicalCluster& b) const;

  /// Per-attribute LCA — the least generalization covering both.
  HierarchicalCluster Lca(const HierarchicalCluster& a,
                          const HierarchicalCluster& b) const;

  /// Generalized Definition 3.1: an attribute contributes to the distance
  /// unless both sides hold the same *leaf* node (an internal node, like
  /// '*', always counts).
  int Distance(const HierarchicalCluster& a,
               const HierarchicalCluster& b) const;

  /// "(age[20..40), 1995, *)" style rendering.
  std::string Render(const HierarchicalCluster& c) const;

 private:
  std::vector<ConceptHierarchy> per_attr_;
};

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_HIERARCHY_H_
