#include "core/numeric_distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "core/semilattice.h"

namespace qagview::core {

NumericDistanceModel NumericDistanceModel::FromAnswerSet(const AnswerSet& s) {
  NumericDistanceModel model;
  const int m = s.num_attrs();
  model.numeric_.assign(static_cast<size_t>(m), 0);
  model.scale_.resize(static_cast<size_t>(m));
  model.spread_.assign(static_cast<size_t>(m), 0.0);
  for (int a = 0; a < m; ++a) {
    const int domain = s.domain_size(a);
    std::vector<double> values(static_cast<size_t>(domain));
    bool all_numeric = domain > 0;
    for (int32_t code = 0; code < domain && all_numeric; ++code) {
      auto parsed = ParseDouble(s.ValueName(a, code));
      if (parsed.ok()) {
        values[static_cast<size_t>(code)] = *parsed;
      } else {
        all_numeric = false;
      }
    }
    if (!all_numeric) continue;
    auto [lo, hi] = std::minmax_element(values.begin(), values.end());
    double spread = *hi - *lo;
    if (spread <= 0.0) continue;  // constant column: keep categorical
    model.numeric_[static_cast<size_t>(a)] = 1;
    model.scale_[static_cast<size_t>(a)] = std::move(values);
    model.spread_[static_cast<size_t>(a)] = spread;
  }
  return model;
}

NumericDistanceModel NumericDistanceModel::Categorical(int num_attrs) {
  NumericDistanceModel model;
  model.numeric_.assign(static_cast<size_t>(num_attrs), 0);
  model.scale_.resize(static_cast<size_t>(num_attrs));
  model.spread_.assign(static_cast<size_t>(num_attrs), 0.0);
  return model;
}

double NumericDistanceModel::AttributeGap(int a, int32_t code_a,
                                          int32_t code_b) const {
  // A wildcard's extent is the full domain: the max-over-extents rule
  // makes it the maximal gap, exactly as '*' always counts in Def 3.1.
  if (code_a == kWildcard || code_b == kWildcard) return 1.0;
  if (code_a == code_b) return 0.0;
  if (!is_numeric(a)) return 1.0;
  const std::vector<double>& scale = scale_[static_cast<size_t>(a)];
  return std::abs(scale[static_cast<size_t>(code_a)] -
                  scale[static_cast<size_t>(code_b)]) /
         spread_[static_cast<size_t>(a)];
}

double NumericDistanceModel::Distance(const Cluster& a, const Cluster& b,
                                      double p) const {
  QAG_CHECK(a.num_attrs() == num_attrs() && b.num_attrs() == num_attrs());
  QAG_CHECK(p == kInfinity || p >= 1.0) << "Lp needs p >= 1";
  double max_gap = 0.0;
  double sum = 0.0;
  for (int i = 0; i < num_attrs(); ++i) {
    double gap = AttributeGap(i, a[i], b[i]);
    max_gap = std::max(max_gap, gap);
    if (p != kInfinity) sum += std::pow(gap, p);
  }
  if (p == kInfinity) return max_gap;
  return std::pow(sum, 1.0 / p);
}

double NumericDistanceModel::MinPairwiseDistance(
    const ClusterUniverse& universe, const Solution& solution,
    double p) const {
  double min_distance = std::numeric_limits<double>::infinity();
  const auto& ids = solution.cluster_ids;
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      min_distance = std::min(
          min_distance,
          Distance(universe.cluster(ids[i]), universe.cluster(ids[j]), p));
    }
  }
  return min_distance;
}

}  // namespace qagview::core
