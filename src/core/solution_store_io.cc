#include "core/solution_store_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "core/cluster.h"

namespace qagview::core {

namespace {

constexpr int kFormatVersion = 1;

/// Shortest round-trip representation of a double.
std::string RoundTripDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}

struct LineReader {
  std::istringstream in;
  int line_number = 0;

  explicit LineReader(const std::string& text) : in(text) {}

  Result<std::string> Next() {
    std::string line;
    while (std::getline(in, line)) {
      ++line_number;
      if (!line.empty()) return line;
    }
    return Status::InvalidArgument("unexpected end of solution-store data");
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrCat("solution store line ", line_number, ": ", message));
  }
};

}  // namespace

std::string SerializeSolutionStore(const SolutionStore& store) {
  std::string out;
  std::vector<int> d_values = store.d_values();
  out += StrCat("qagview-store ", kFormatVersion, " ", store.l(), " ",
                store.k_max(), " ", store.num_attrs(), " ", d_values.size(),
                "\n");
  for (int d : d_values) {
    auto size_values = store.SizeValues(d);
    auto intervals = store.Intervals(d);
    QAG_CHECK_OK(size_values.status());
    QAG_CHECK_OK(intervals.status());
    out += StrCat("d ", d, " states ", size_values->size(), " intervals ",
                  intervals->size(), "\n");
    for (const auto& [size, value] : *size_values) {
      out += StrCat("s ", size, " ", RoundTripDouble(value), "\n");
    }
    for (const SolutionStore::IntervalRecord& record : *intervals) {
      out += StrCat("i ", record.lo, " ", record.hi);
      for (int32_t code : store.ClusterPattern(record.cluster_id)) {
        out += code == kWildcard ? " *" : StrCat(" ", code);
      }
      out += "\n";
    }
  }
  return out;
}

Result<SolutionStore> DeserializeSolutionStore(const ClusterUniverse* universe,
                                               const std::string& text) {
  if (universe == nullptr) {
    return Status::InvalidArgument("universe must not be null");
  }
  LineReader reader(text);

  QAG_ASSIGN_OR_RETURN(std::string header, reader.Next());
  std::vector<std::string> head = Split(header, ' ');
  if (head.size() != 6 || head[0] != "qagview-store") {
    return reader.Error("bad header (expected 'qagview-store <version> ...')");
  }
  QAG_ASSIGN_OR_RETURN(int64_t version, ParseInt64(head[1]));
  if (version != kFormatVersion) {
    return reader.Error(StrCat("unsupported format version ", version));
  }
  QAG_ASSIGN_OR_RETURN(int64_t l, ParseInt64(head[2]));
  QAG_ASSIGN_OR_RETURN(int64_t k_max, ParseInt64(head[3]));
  QAG_ASSIGN_OR_RETURN(int64_t num_attrs, ParseInt64(head[4]));
  QAG_ASSIGN_OR_RETURN(int64_t num_d, ParseInt64(head[5]));
  const int m = universe->answer_set().num_attrs();
  if (num_attrs != m) {
    return reader.Error(StrCat("store has ", num_attrs,
                               " attributes but the universe has ", m));
  }
  if (l > universe->top_l()) {
    return reader.Error(
        StrCat("store was built for L=", l, " but the universe only covers ",
               universe->top_l()));
  }

  std::vector<SolutionStore::PartsPerD> parts;
  for (int64_t block = 0; block < num_d; ++block) {
    QAG_ASSIGN_OR_RETURN(std::string d_line, reader.Next());
    std::vector<std::string> fields = Split(d_line, ' ');
    if (fields.size() != 6 || fields[0] != "d" || fields[2] != "states" ||
        fields[4] != "intervals") {
      return reader.Error("bad per-D header");
    }
    SolutionStore::PartsPerD part;
    QAG_ASSIGN_OR_RETURN(int64_t d, ParseInt64(fields[1]));
    QAG_ASSIGN_OR_RETURN(int64_t num_states, ParseInt64(fields[3]));
    QAG_ASSIGN_OR_RETURN(int64_t num_intervals, ParseInt64(fields[5]));
    part.d = static_cast<int>(d);

    for (int64_t r = 0; r < num_states; ++r) {
      QAG_ASSIGN_OR_RETURN(std::string line, reader.Next());
      std::vector<std::string> sv = Split(line, ' ');
      if (sv.size() != 3 || sv[0] != "s") return reader.Error("bad state row");
      QAG_ASSIGN_OR_RETURN(int64_t size, ParseInt64(sv[1]));
      QAG_ASSIGN_OR_RETURN(double value, ParseDouble(sv[2]));
      part.size_value.emplace_back(static_cast<int>(size), value);
    }

    for (int64_t r = 0; r < num_intervals; ++r) {
      QAG_ASSIGN_OR_RETURN(std::string line, reader.Next());
      std::vector<std::string> fields2 = Split(line, ' ');
      if (static_cast<int>(fields2.size()) != 3 + m || fields2[0] != "i") {
        return reader.Error(
            StrCat("bad interval row (expected ", 3 + m, " fields)"));
      }
      SolutionStore::IntervalRecord record;
      QAG_ASSIGN_OR_RETURN(int64_t lo, ParseInt64(fields2[1]));
      QAG_ASSIGN_OR_RETURN(int64_t hi, ParseInt64(fields2[2]));
      record.lo = static_cast<int>(lo);
      record.hi = static_cast<int>(hi);
      std::vector<int32_t> pattern(static_cast<size_t>(m));
      for (int a = 0; a < m; ++a) {
        const std::string& field = fields2[static_cast<size_t>(3 + a)];
        if (field == "*") {
          pattern[static_cast<size_t>(a)] = kWildcard;
        } else {
          QAG_ASSIGN_OR_RETURN(int64_t code, ParseInt64(field));
          pattern[static_cast<size_t>(a)] = static_cast<int32_t>(code);
        }
      }
      record.cluster_id = universe->FindId(Cluster(std::move(pattern)));
      if (record.cluster_id < 0) {
        return reader.Error(
            "pattern not present in the universe (store built from a "
            "different answer set or L?)");
      }
      part.intervals.push_back(record);
    }
    parts.push_back(std::move(part));
  }
  return SolutionStore::FromParts(universe, static_cast<int>(l),
                                  static_cast<int>(k_max), std::move(parts));
}

Status SaveSolutionStore(const SolutionStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::NotFound(StrCat("cannot open ", path, " for writing"));
  }
  out << SerializeSolutionStore(store);
  out.flush();
  if (!out) return Status::Internal(StrCat("write to ", path, " failed"));
  return Status::OK();
}

Result<SolutionStore> LoadSolutionStore(const ClusterUniverse* universe,
                                        const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(StrCat("cannot open ", path));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeSolutionStore(universe, buffer.str());
}

Result<int> PeekSolutionStoreL(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(StrCat("cannot open ", path));
  std::string header;
  while (std::getline(in, header)) {
    if (!header.empty()) break;
  }
  std::vector<std::string> head = Split(header, ' ');
  if (head.size() != 6 || head[0] != "qagview-store") {
    return Status::InvalidArgument(
        StrCat(path, ": bad header (expected 'qagview-store <version> ...')"));
  }
  QAG_ASSIGN_OR_RETURN(int64_t l, ParseInt64(head[2]));
  return static_cast<int>(l);
}

}  // namespace qagview::core
