#include "core/solution_store_io.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "core/cluster.h"

namespace qagview::core {

namespace {

constexpr int kFormatVersion = 1;

/// Shortest round-trip representation of a double.
std::string RoundTripDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}

struct LineReader {
  std::istringstream in;
  int line_number = 0;

  explicit LineReader(const std::string& text) : in(text) {}

  Result<std::string> Next() {
    std::string line;
    while (std::getline(in, line)) {
      ++line_number;
      if (!line.empty()) return line;
    }
    return Status::InvalidArgument("unexpected end of solution-store data");
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrCat("solution store line ", line_number, ": ", message));
  }

  /// Parses an integer field and range-checks it *before* any narrowing
  /// cast — the load path must survive arbitrary disk bytes, so a count
  /// or coordinate outside its plausible range is rejected as damage
  /// rather than truncated into something that happens to validate.
  Result<int> BoundedInt(const std::string& field, const char* what,
                         int64_t lo, int64_t hi) {
    Result<int64_t> v = ParseInt64(field);
    if (!v.ok()) return Error(StrCat("bad ", what, " '", field, "'"));
    if (*v < lo || *v > hi) {
      return Error(
          StrCat(what, " = ", *v, " outside [", lo, ", ", hi, "]"));
    }
    return static_cast<int>(*v);
  }
};

/// Structural ceilings for untrusted store files. Far above anything the
/// precompute can produce, far below anything that overflows an int or
/// turns a hostile header into unbounded work.
constexpr int64_t kMaxL = int64_t{1} << 30;
constexpr int64_t kMaxKMax = int64_t{1} << 30;
constexpr int64_t kMaxAttrs = int64_t{1} << 20;
constexpr int64_t kMaxDBlocks = int64_t{1} << 20;
constexpr int64_t kMaxStates = int64_t{1} << 26;
constexpr int64_t kMaxIntervals = int64_t{1} << 28;

}  // namespace

std::string SerializeSolutionStore(const SolutionStore& store) {
  std::string out;
  std::vector<int> d_values = store.d_values();
  out += StrCat("qagview-store ", kFormatVersion, " ", store.l(), " ",
                store.k_max(), " ", store.num_attrs(), " ", d_values.size(),
                "\n");
  for (int d : d_values) {
    auto size_values = store.SizeValues(d);
    auto intervals = store.Intervals(d);
    QAG_CHECK_OK(size_values.status());
    QAG_CHECK_OK(intervals.status());
    out += StrCat("d ", d, " states ", size_values->size(), " intervals ",
                  intervals->size(), "\n");
    for (const auto& [size, value] : *size_values) {
      out += StrCat("s ", size, " ", RoundTripDouble(value), "\n");
    }
    for (const SolutionStore::IntervalRecord& record : *intervals) {
      out += StrCat("i ", record.lo, " ", record.hi);
      for (int32_t code : store.ClusterPattern(record.cluster_id)) {
        out += code == kWildcard ? " *" : StrCat(" ", code);
      }
      out += "\n";
    }
  }
  return out;
}

Result<SolutionStore> DeserializeSolutionStore(const ClusterUniverse* universe,
                                               const std::string& text) {
  if (universe == nullptr) {
    return Status::InvalidArgument("universe must not be null");
  }
  LineReader reader(text);

  QAG_ASSIGN_OR_RETURN(std::string header, reader.Next());
  std::vector<std::string> head = Split(header, ' ');
  if (head.size() != 6 || head[0] != "qagview-store") {
    return reader.Error("bad header (expected 'qagview-store <version> ...')");
  }
  QAG_ASSIGN_OR_RETURN(int64_t version, ParseInt64(head[1]));
  if (version != kFormatVersion) {
    return reader.Error(StrCat("unsupported format version ", version));
  }
  QAG_ASSIGN_OR_RETURN(int l, reader.BoundedInt(head[2], "L", 1, kMaxL));
  QAG_ASSIGN_OR_RETURN(int k_max,
                       reader.BoundedInt(head[3], "k_max", 1, kMaxKMax));
  QAG_ASSIGN_OR_RETURN(int num_attrs,
                       reader.BoundedInt(head[4], "num_attrs", 1, kMaxAttrs));
  QAG_ASSIGN_OR_RETURN(int64_t num_d,
                       reader.BoundedInt(head[5], "num_d", 0, kMaxDBlocks));
  const int m = universe->answer_set().num_attrs();
  if (num_attrs != m) {
    return reader.Error(StrCat("store has ", num_attrs,
                               " attributes but the universe has ", m));
  }
  if (l > universe->top_l()) {
    return reader.Error(
        StrCat("store was built for L=", l, " but the universe only covers ",
               universe->top_l()));
  }

  std::vector<SolutionStore::PartsPerD> parts;
  for (int64_t block = 0; block < num_d; ++block) {
    QAG_ASSIGN_OR_RETURN(std::string d_line, reader.Next());
    std::vector<std::string> fields = Split(d_line, ' ');
    if (fields.size() != 6 || fields[0] != "d" || fields[2] != "states" ||
        fields[4] != "intervals") {
      return reader.Error("bad per-D header");
    }
    SolutionStore::PartsPerD part;
    QAG_ASSIGN_OR_RETURN(int d, reader.BoundedInt(fields[1], "D", 0, m));
    QAG_ASSIGN_OR_RETURN(
        int64_t num_states,
        reader.BoundedInt(fields[3], "state count", 1, kMaxStates));
    QAG_ASSIGN_OR_RETURN(
        int64_t num_intervals,
        reader.BoundedInt(fields[5], "interval count", 0, kMaxIntervals));
    part.d = d;

    for (int64_t r = 0; r < num_states; ++r) {
      QAG_ASSIGN_OR_RETURN(std::string line, reader.Next());
      std::vector<std::string> sv = Split(line, ' ');
      if (sv.size() != 3 || sv[0] != "s") return reader.Error("bad state row");
      QAG_ASSIGN_OR_RETURN(int size,
                           reader.BoundedInt(sv[1], "state size", 1, kMaxL));
      Result<double> value = ParseDouble(sv[2]);
      if (!value.ok() || !std::isfinite(*value)) {
        return reader.Error(StrCat("bad state value '", sv[2], "'"));
      }
      part.size_value.emplace_back(size, *value);
    }

    for (int64_t r = 0; r < num_intervals; ++r) {
      QAG_ASSIGN_OR_RETURN(std::string line, reader.Next());
      std::vector<std::string> fields2 = Split(line, ' ');
      if (static_cast<int>(fields2.size()) != 3 + m || fields2[0] != "i") {
        return reader.Error(
            StrCat("bad interval row (expected ", 3 + m, " fields)"));
      }
      SolutionStore::IntervalRecord record;
      QAG_ASSIGN_OR_RETURN(record.lo,
                           reader.BoundedInt(fields2[1], "lo", 1, kMaxKMax));
      QAG_ASSIGN_OR_RETURN(record.hi,
                           reader.BoundedInt(fields2[2], "hi", 1, kMaxKMax));
      std::vector<int32_t> pattern(static_cast<size_t>(m));
      for (int a = 0; a < m; ++a) {
        const std::string& field = fields2[static_cast<size_t>(3 + a)];
        if (field == "*") {
          pattern[static_cast<size_t>(a)] = kWildcard;
        } else {
          QAG_ASSIGN_OR_RETURN(
              int code,
              reader.BoundedInt(field, "attribute code", 0, INT32_MAX));
          pattern[static_cast<size_t>(a)] = static_cast<int32_t>(code);
        }
      }
      record.cluster_id = universe->FindId(Cluster(std::move(pattern)));
      if (record.cluster_id < 0) {
        return reader.Error(
            "pattern not present in the universe (store built from a "
            "different answer set or L?)");
      }
      part.intervals.push_back(record);
    }
    parts.push_back(std::move(part));
  }
  return SolutionStore::FromParts(universe, l, k_max, std::move(parts));
}

Status SaveSolutionStore(const SolutionStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::NotFound(StrCat("cannot open ", path, " for writing"));
  }
  out << SerializeSolutionStore(store);
  out.flush();
  if (!out) return Status::Internal(StrCat("write to ", path, " failed"));
  return Status::OK();
}

Result<SolutionStore> LoadSolutionStore(const ClusterUniverse* universe,
                                        const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(StrCat("cannot open ", path));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeSolutionStore(universe, buffer.str());
}

Result<int> PeekSolutionStoreL(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(StrCat("cannot open ", path));
  std::string header;
  while (std::getline(in, header)) {
    if (!header.empty()) break;
  }
  std::vector<std::string> head = Split(header, ' ');
  if (head.size() != 6 || head[0] != "qagview-store") {
    return Status::InvalidArgument(
        StrCat(path, ": bad header (expected 'qagview-store <version> ...')"));
  }
  QAG_ASSIGN_OR_RETURN(int64_t version, ParseInt64(head[1]));
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        StrCat(path, ": unsupported format version ", version));
  }
  QAG_ASSIGN_OR_RETURN(int64_t l, ParseInt64(head[2]));
  if (l < 1 || l > (int64_t{1} << 30)) {
    return Status::InvalidArgument(StrCat(path, ": implausible L = ", l));
  }
  return static_cast<int>(l);
}

}  // namespace qagview::core
