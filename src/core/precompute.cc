#include "core/precompute.h"

#include <algorithm>
#include <limits>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/fixed_order.h"
#include "core/greedy_state.h"

namespace qagview::core {

namespace {

// One Bottom-Up replay for a fixed D, recording the solution state after
// the distance phase and after every size-phase merge.
SolutionStore::Trace ReplayForD(const ClusterUniverse& universe,
                                const std::vector<int>& initial, int d,
                                int k_min, bool use_delta) {
  GreedyState state(&universe, use_delta);
  for (int id : initial) state.AddCluster(id);

  auto best_merge = [&](const std::vector<std::pair<int, int>>& pairs) {
    double best_score = -std::numeric_limits<double>::infinity();
    int best_lca = -1;
    for (const auto& [i, j] : pairs) {
      int lca =
          universe.LcaId(state.clusters()[static_cast<size_t>(i)],
                         state.clusters()[static_cast<size_t>(j)]);
      double score = state.TentativeAverage(lca);
      if (score > best_score) {
        best_score = score;
        best_lca = lca;
      }
    }
    return best_lca;
  };

  // Phase 1: enforce the distance constraint (mandatory for every k).
  while (true) {
    std::vector<std::pair<int, int>> pairs;
    int n = state.size();
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (Distance(
                universe.cluster(state.clusters()[static_cast<size_t>(i)]),
                universe.cluster(state.clusters()[static_cast<size_t>(j)])) <
            d) {
          pairs.emplace_back(i, j);
        }
      }
    }
    if (pairs.empty()) break;
    state.AddCluster(best_merge(pairs));
  }

  SolutionStore::Trace trace;
  trace.d = d;
  trace.states.push_back(state.clusters());
  trace.values.push_back(state.Average());

  // Phase 2: merge down, recording each state on the way to k_min.
  while (state.size() > std::max(k_min, 1)) {
    std::vector<std::pair<int, int>> pairs;
    int n = state.size();
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
    }
    state.AddCluster(best_merge(pairs));
    trace.states.push_back(state.clusters());
    trace.values.push_back(state.Average());
  }
  return trace;
}

}  // namespace

PrecomputeOptions PrecomputeOptions::ResolvedFor(int num_attrs) const {
  PrecomputeOptions resolved = *this;
  if (resolved.k_max <= 0) resolved.k_max = std::max(resolved.k_min, 20);
  if (resolved.d_values.empty()) {
    for (int d = 1; d <= num_attrs; ++d) resolved.d_values.push_back(d);
  }
  return resolved;
}

bool PrecomputeOptions::CoveredBy(const SolutionStore& store) const {
  if (store.k_max() < k_max) return false;
  for (int d : d_values) {
    // MinK doubles as the presence probe: an error means the store has no
    // row for this D. A fresh build merges down to max(k_min, 1), so the
    // cached row must reach at least as low.
    Result<int> min_k = store.MinK(d);
    if (!min_k.ok()) return false;
    if (*min_k > std::max(k_min, 1)) return false;
  }
  return true;
}

std::string PrecomputeOptions::CacheKey(int top_l, int num_attrs) const {
  PrecomputeOptions r = ResolvedFor(num_attrs);
  std::string key = "L=" + std::to_string(top_l) +
                    ";kmin=" + std::to_string(r.k_min) +
                    ";kmax=" + std::to_string(r.k_max) +
                    ";c=" + std::to_string(r.c) +
                    ";delta=" + (r.use_delta_judgment ? "1" : "0") + ";d=";
  for (size_t i = 0; i < r.d_values.size(); ++i) {
    if (i > 0) key += ',';
    key += std::to_string(r.d_values[i]);
  }
  return key;
}

Result<SolutionStore> Precompute::Run(const ClusterUniverse& universe,
                                      int top_l,
                                      const PrecomputeOptions& options,
                                      PrecomputeStats* stats) {
  if (top_l < 1 || top_l > universe.top_l()) {
    return Status::InvalidArgument("top_l out of range for this universe");
  }
  if (options.k_min < 1) {
    return Status::InvalidArgument("k_min must be >= 1");
  }
  int m = universe.answer_set().num_attrs();

  const PrecomputeOptions resolved = options.ResolvedFor(m);
  const std::vector<int>& d_values = resolved.d_values;
  for (int d : d_values) {
    // d = 0 is the explicit "no distance constraint" row (no-op distance
    // phase); the default grid itself is 1..m per §6.2.
    if (d < 0 || d > m) {
      return Status::InvalidArgument("D values must lie in [0, m]");
    }
  }

  int k_max = resolved.k_max;
  if (k_max < options.k_min) {
    return Status::InvalidArgument("k_max must be >= k_min");
  }

  // Fixed-Order phase: once, distance-free, with the largest budget.
  WallTimer timer;
  FixedOrderOptions fo;
  fo.use_delta_judgment = options.use_delta_judgment;
  QAG_ASSIGN_OR_RETURN(
      std::vector<int> initial,
      FixedOrder::RunPhase(universe, std::max(2, options.c) * k_max, top_l,
                           /*distance_d=*/0, fo));
  double fixed_order_ms = timer.ElapsedMillis();

  // Bottom-Up replays, one per D. Each replay is an independent read-only
  // pass over the universe, so they run as one pool task per D; every task
  // writes only its own pre-sized slot, making the store bit-identical to
  // the serial order for any thread count.
  timer.Restart();
  int num_threads = options.num_threads > 0 ? options.num_threads
                                            : ThreadPool::DefaultNumThreads();
  if (d_values.size() == 1) num_threads = 1;  // nothing to distribute
  std::vector<SolutionStore::Trace> traces(d_values.size());
  if (num_threads == 1) {
    for (size_t i = 0; i < d_values.size(); ++i) {
      traces[i] = ReplayForD(universe, initial, d_values[i], options.k_min,
                             options.use_delta_judgment);
    }
  } else {
    ThreadPool pool(num_threads);
    pool.ParallelFor(0, static_cast<int64_t>(d_values.size()), [&](int64_t i) {
      traces[static_cast<size_t>(i)] =
          ReplayForD(universe, initial, d_values[static_cast<size_t>(i)],
                     options.k_min, options.use_delta_judgment);
    });
  }
  double bottom_up_ms = timer.ElapsedMillis();

  if (stats != nullptr) {
    stats->fixed_order_ms = fixed_order_ms;
    stats->bottom_up_ms = bottom_up_ms;
    stats->initial_clusters = static_cast<int>(initial.size());
    stats->num_threads = num_threads;
  }
  return SolutionStore(&universe, top_l, k_max, std::move(traces));
}

}  // namespace qagview::core
