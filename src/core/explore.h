#ifndef QAGVIEW_CORE_EXPLORE_H_
#define QAGVIEW_CORE_EXPLORE_H_

#include <string>
#include <vector>

#include "core/solution.h"

namespace qagview::core {

/// One first-layer row of the two-layer output (Figure 1b): a cluster, its
/// rendered pattern, and the statistics of the elements it covers.
struct ClusterView {
  int cluster_id = -1;
  std::string pattern;            // "(1980, *, M, *)"
  double average = 0.0;           // avg value of covered elements
  int count = 0;                  // elements covered
  int top_count = 0;              // of which in the top L
  std::vector<int> member_ranks;  // 1-based ranks of covered elements
};

/// The two-layer view of a solution: clusters (sorted by average
/// descending, as the paper displays them) plus the solution objective.
struct TwoLayerView {
  std::vector<ClusterView> clusters;
  double solution_average = 0.0;
  int solution_count = 0;
};

/// Builds the display structures for a solution.
TwoLayerView BuildTwoLayerView(const ClusterUniverse& universe,
                               const Solution& solution);

/// Renders the collapsed first layer (Figure 1b): one row per cluster with
/// its pattern and average value.
std::string RenderSummary(const ClusterUniverse& universe,
                          const Solution& solution);

/// Renders the expanded view (Figure 1c): each cluster followed by the
/// original result tuples it covers, with their global ranks. Clusters list
/// at most `max_members` members each (0 = all).
std::string RenderExpanded(const ClusterUniverse& universe,
                           const Solution& solution, int max_members = 0);

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_EXPLORE_H_
