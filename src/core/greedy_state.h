#ifndef QAGVIEW_CORE_GREEDY_STATE_H_
#define QAGVIEW_CORE_GREEDY_STATE_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/semilattice.h"

namespace qagview::core {

/// \brief Mutable solution state shared by the greedy algorithms
/// (Bottom-Up, Fixed-Order, Hybrid), with the paper's delta-judgment
/// optimization (§6.3, Algorithm 2).
///
/// The state holds the current cluster set O, the covered-element union
/// T = cov(O) with its sum/count, and per-candidate marginal benefits
/// Δ(c) = (sum, count) of Tc \ T. Candidate evaluation
/// (TentativeAverage) asks "what would avg(O ∪ {c}) be?"; with delta
/// judgment enabled, Δ(c) is cached with a round stamp and refreshed
/// incrementally against the last round's difference list T_j \ T_{j-1}
/// (Algorithm 2) instead of rescanning Tc against T.
///
/// Every mutation is an AddCluster (merges add the LCA, which subsumes the
/// merged clusters): coverage only grows, so rounds form the monotone
/// chain Proposition 6.1 relies on.
class GreedyState {
 public:
  GreedyState(const ClusterUniverse* universe, bool use_delta_judgment);

  const ClusterUniverse& universe() const { return *universe_; }
  const std::vector<int>& clusters() const { return clusters_; }
  int size() const { return static_cast<int>(clusters_.size()); }

  double covered_sum() const { return covered_sum_; }
  int covered_count() const { return covered_count_; }
  /// avg(O); 0 when empty.
  double Average() const {
    return covered_count_ == 0 ? 0.0 : covered_sum_ / covered_count_;
  }

  bool ElementCovered(int e) const {
    return covered_[static_cast<size_t>(e)] != 0;
  }

  /// Minimum value among covered elements; +infinity when empty. Coverage
  /// only grows, so this is monotonically non-increasing across rounds.
  double Min() const { return covered_min_; }

  /// avg(O ∪ {cluster id}) — the UpdateSolution candidate score.
  double TentativeAverage(int id);

  /// min value of cov(O ∪ {cluster id}) — the Max-Min objective score
  /// (§9 "objective functions other than average"). O(1): covered lists
  /// are sorted descending by value, so a cluster's min is its last entry.
  double TentativeMin(int id) const;

  /// Number of *redundant* elements (outside the top L) the cluster would
  /// newly cover — the Min-Size objective of footnote 5 counts these.
  int TentativeRedundant(int id);

  /// Redundant elements currently covered.
  int redundant_count() const { return covered_count_ - covered_top_count_; }

  /// Commits cluster `id` into the solution: extends coverage (recording the
  /// difference list for delta judgment), removes clusters covered by it,
  /// and appends it. One round in the paper's terminology.
  void AddCluster(int id);

  /// Number of element-level comparisons performed by TentativeAverage so
  /// far (work metric for the Figure-8b ablation).
  int64_t comparison_count() const { return comparisons_; }

  int round() const { return round_; }

 private:
  struct Delta {
    double sum = 0.0;
    int count = 0;
    int count_top = 0;  // of which in the top L
    int stamp = -1;  // round this delta is valid for; -1 = never computed
  };

  void RefreshDelta(int id, Delta* delta);
  Delta& DeltaFor(int id, Delta* scratch);

  const ClusterUniverse* universe_;
  bool use_delta_;
  std::vector<int> clusters_;
  std::vector<char> covered_;       // element -> covered?
  double covered_sum_ = 0.0;
  double covered_min_ = std::numeric_limits<double>::infinity();
  int covered_count_ = 0;
  int covered_top_count_ = 0;
  int round_ = 0;                   // number of AddCluster commits
  std::vector<int32_t> last_diff_;  // T_round \ T_{round-1}
  std::unordered_map<int, Delta> deltas_;
  int64_t comparisons_ = 0;
};

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_GREEDY_STATE_H_
