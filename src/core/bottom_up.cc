#include "core/bottom_up.h"

#include <limits>

#include "core/greedy_state.h"

namespace qagview::core {

namespace {

// Finds the best pair to merge among `pairs` (positions into
// state.clusters()) under the configured rule and commits it.
void MergeBestPair(GreedyState* state,
                   const std::vector<std::pair<int, int>>& pairs,
                   BottomUpOptions::MergeRule rule) {
  QAG_DCHECK(!pairs.empty());
  const ClusterUniverse& u = state->universe();
  double best_score = -std::numeric_limits<double>::infinity();
  double best_tie = -std::numeric_limits<double>::infinity();
  int best_lca = -1;
  for (const auto& [i, j] : pairs) {
    int lca = u.LcaId(state->clusters()[static_cast<size_t>(i)],
                      state->clusters()[static_cast<size_t>(j)]);
    double score = 0.0;
    double tie = 0.0;
    switch (rule) {
      case BottomUpOptions::MergeRule::kSolutionAverage:
        score = state->TentativeAverage(lca);
        break;
      case BottomUpOptions::MergeRule::kLcaAverage:
        score = u.Average(lca);
        break;
      case BottomUpOptions::MergeRule::kMinRedundant:
        score = -state->TentativeRedundant(lca);
        tie = state->TentativeAverage(lca);
        break;
      case BottomUpOptions::MergeRule::kMaxMin:
        score = state->TentativeMin(lca);
        tie = state->TentativeAverage(lca);
        break;
    }
    if (score > best_score || (score == best_score && tie > best_tie)) {
      best_score = score;
      best_tie = tie;
      best_lca = lca;
    }
  }
  state->AddCluster(best_lca);
}

std::vector<std::pair<int, int>> PairsCloserThan(const GreedyState& state,
                                                 int min_distance) {
  const ClusterUniverse& u = state.universe();
  std::vector<std::pair<int, int>> pairs;
  int n = state.size();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (Distance(u.cluster(state.clusters()[static_cast<size_t>(i)]),
                   u.cluster(state.clusters()[static_cast<size_t>(j)])) <
          min_distance) {
        pairs.emplace_back(i, j);
      }
    }
  }
  return pairs;
}

std::vector<std::pair<int, int>> AllPairs(int n) {
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  }
  return pairs;
}

}  // namespace

Result<Solution> BottomUp::Run(const ClusterUniverse& universe,
                               const Params& params,
                               const BottomUpOptions& options) {
  QAG_RETURN_IF_ERROR(ValidateParams(universe.answer_set(), params));
  if (params.L > universe.top_l()) {
    return Status::InvalidArgument(
        "universe was built for a smaller L than requested");
  }
  std::vector<int> initial;
  if (options.start == BottomUpOptions::Start::kLevelDMinus1 &&
      params.D >= 1) {
    initial = universe.LevelStartIds(params.D - 1);
  } else {
    initial.reserve(static_cast<size_t>(params.L));
    for (int i = 0; i < params.L; ++i) {
      initial.push_back(universe.singleton_id(i));
    }
  }
  return RunFrom(universe, params, initial, options);
}

Result<Solution> BottomUp::RunFrom(const ClusterUniverse& universe,
                                   const Params& params,
                                   const std::vector<int>& initial,
                                   const BottomUpOptions& options) {
  QAG_RETURN_IF_ERROR(ValidateParams(universe.answer_set(), params));
  GreedyState state(&universe, options.use_delta_judgment);
  for (int id : initial) state.AddCluster(id);

  // Phase 1: enforce the distance constraint.
  while (true) {
    std::vector<std::pair<int, int>> pairs = PairsCloserThan(state, params.D);
    if (pairs.empty()) break;
    MergeBestPair(&state, pairs, options.merge_rule);
  }

  // Phase 2: enforce the size constraint.
  while (state.size() > params.k) {
    MergeBestPair(&state, AllPairs(state.size()), options.merge_rule);
  }

  Solution solution = MakeSolution(universe, state.clusters());
  QAG_CHECK_OK(CheckFeasible(universe, solution.cluster_ids, params));
  return solution;
}

}  // namespace qagview::core
