#ifndef QAGVIEW_CORE_KMEANS_H_
#define QAGVIEW_CORE_KMEANS_H_

#include <cstdint>
#include <vector>

#include "core/answer_set.h"

namespace qagview::core {

/// \brief k-modes clustering of categorical code vectors (the categorical
/// analogue of k-means [20, 21] the paper uses to seed the
/// k-means-Fixed-Order variant and as a related-work comparison point).
///
/// Distance is the attribute-mismatch count (ElementDistance); centroids
/// are per-attribute modes. Random seeding; runs until assignment fixpoint
/// or `max_iters`.
struct KModesResult {
  /// cluster index per input point.
  std::vector<int> assignment;
  /// centroid code vectors (may be fewer than k if clusters empty out).
  std::vector<std::vector<int32_t>> centroids;
  int iterations = 0;
};

KModesResult KModes(const std::vector<std::vector<int32_t>>& points, int k,
                    uint64_t seed, int max_iters = 50);

/// Convenience: clusters the top-L elements of an answer set and returns
/// the minimum pattern covering each resulting cluster (the LCA of its
/// members) — the seed patterns of the k-means-Fixed-Order variant (§5.2).
std::vector<std::vector<int32_t>> KModesSeedPatterns(const AnswerSet& s,
                                                     int top_l, int k,
                                                     uint64_t seed);

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_KMEANS_H_
