#include "core/answer_set.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace qagview::core {

namespace {

/// The exact bit pattern of a double, so fingerprint equality means
/// bit-identity (distinguishes -0.0 from 0.0, unlike operator==).
uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

double TwoSidedNormalQuantile(double confidence) {
  QAG_CHECK(confidence > 0.0 && confidence < 1.0)
      << "confidence must be in (0, 1)";
  // P(|Z| <= z) = erf(z / sqrt(2)) is monotone; bisect it. 200 halvings of
  // [0, 40] are far below double epsilon, so this is exact to the ulp.
  double lo = 0.0;
  double hi = 40.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (std::erf(mid / std::sqrt(2.0)) < confidence) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

Result<AnswerSet> AnswerSet::FromTable(const storage::Table& table,
                                       const std::string& value_column) {
  return FromTableImpl(table, value_column, /*row_se=*/nullptr, /*z=*/0.0,
                       Approximation{});
}

Result<AnswerSet> AnswerSet::FromTableApproximate(
    const storage::Table& table, const std::string& value_column,
    const std::vector<double>& row_se, double confidence, int64_t sample_rows,
    int64_t population_rows) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  if (static_cast<int64_t>(row_se.size()) != table.num_rows()) {
    return Status::InvalidArgument(
        StrCat("row_se has ", row_se.size(), " entries for ", table.num_rows(),
               " result rows"));
  }
  if (sample_rows <= 0 || sample_rows > population_rows) {
    return Status::InvalidArgument(
        "need 0 < sample_rows <= population_rows");
  }
  Approximation approx;
  approx.is_exact = false;
  approx.sample_fraction = static_cast<double>(sample_rows) /
                           static_cast<double>(population_rows);
  approx.confidence = confidence;
  approx.sample_rows = sample_rows;
  approx.population_rows = population_rows;
  return FromTableImpl(table, value_column, &row_se,
                       TwoSidedNormalQuantile(confidence), std::move(approx));
}

Result<AnswerSet> AnswerSet::FromTableImpl(const storage::Table& table,
                                           const std::string& value_column,
                                           const std::vector<double>* row_se,
                                           double z, Approximation approx) {
  const storage::Schema& schema = table.schema();
  QAG_ASSIGN_OR_RETURN(int value_col, schema.GetFieldIndex(value_column));
  storage::ValueType vt = schema.field(value_col).type;
  if (vt != storage::ValueType::kInt64 && vt != storage::ValueType::kDouble) {
    return Status::InvalidArgument(
        StrCat("value column ", value_column, " must be numeric, is ",
               storage::ValueTypeToString(vt)));
  }

  AnswerSet out;
  std::vector<int> attr_cols;
  for (int c = 0; c < schema.num_fields(); ++c) {
    if (c == value_col) continue;
    attr_cols.push_back(c);
    out.attr_names_.push_back(schema.field(c).name);
  }
  if (attr_cols.empty()) {
    return Status::InvalidArgument("answer set needs at least one attribute");
  }

  out.value_names_.resize(attr_cols.size());
  std::vector<std::unordered_map<std::string, int32_t>> interning(
      attr_cols.size());

  out.elements_.reserve(static_cast<size_t>(table.num_rows()));
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    if (table.column(value_col).IsNull(r)) continue;  // no score: skip
    Element e;
    e.value = table.column(value_col).GetDouble(r);
    if (row_se != nullptr) {
      // Every element of an approximate set must carry a usable bound;
      // rows without one (non-finite SE) are dropped before their
      // attribute values are interned.
      e.bound = z * (*row_se)[static_cast<size_t>(r)];
      if (!std::isfinite(e.bound)) continue;
    }
    e.attrs.reserve(attr_cols.size());
    for (size_t a = 0; a < attr_cols.size(); ++a) {
      storage::Value v = table.Get(r, attr_cols[a]);
      std::string name = v.is_null() ? "<null>" : v.ToString();
      auto [it, inserted] = interning[a].emplace(
          std::move(name), static_cast<int32_t>(out.value_names_[a].size()));
      if (inserted) out.value_names_[a].push_back(it->first);
      e.attrs.push_back(it->second);
    }
    out.elements_.push_back(std::move(e));
  }
  if (out.elements_.empty()) {
    return Status::InvalidArgument("answer set is empty");
  }
  out.approx_ = std::move(approx);  // before SortAndFinalize: is_exact is
                                    // part of the content fingerprint
  out.SortAndFinalize();
  return out;
}

Result<AnswerSet> AnswerSet::FromRaw(
    std::vector<std::string> attr_names,
    std::vector<std::vector<std::string>> value_names,
    std::vector<Element> elements) {
  if (attr_names.empty()) {
    return Status::InvalidArgument("need at least one attribute");
  }
  if (attr_names.size() != value_names.size()) {
    return Status::InvalidArgument("attr_names/value_names size mismatch");
  }
  for (const Element& e : elements) {
    if (e.attrs.size() != attr_names.size()) {
      return Status::InvalidArgument("element arity mismatch");
    }
    for (size_t a = 0; a < e.attrs.size(); ++a) {
      if (e.attrs[a] < 0 ||
          e.attrs[a] >= static_cast<int32_t>(value_names[a].size())) {
        return Status::OutOfRange(
            StrCat("element code ", e.attrs[a], " out of range for attr ",
                   attr_names[a]));
      }
    }
  }
  if (elements.empty()) {
    return Status::InvalidArgument("answer set is empty");
  }
  AnswerSet out;
  out.attr_names_ = std::move(attr_names);
  out.value_names_ = std::move(value_names);
  out.elements_ = std::move(elements);
  out.SortAndFinalize();
  return out;
}

void AnswerSet::SortAndFinalize() {
  std::sort(elements_.begin(), elements_.end(),
            [](const Element& a, const Element& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.attrs < b.attrs;  // deterministic tie-break
            });
  double sum = 0.0;
  approx_.max_bound = 0.0;
  for (const Element& e : elements_) {
    sum += e.value;
    approx_.max_bound = std::max(approx_.max_bound, e.bound);
  }
  trivial_average_ = sum / static_cast<double>(elements_.size());

  // Domain fingerprint: the attribute/value-name hierarchy (code space).
  size_t h = 0;
  HashCombine(&h, attr_names_.size());
  for (const std::string& name : attr_names_) HashCombine(&h, name);
  for (const auto& names : value_names_) {
    HashCombine(&h, names.size());
    for (const std::string& name : names) HashCombine(&h, name);
  }
  domain_fingerprint_ = static_cast<uint64_t>(h);

  // Content fingerprint: the domain, the exactness bit, and every ranked
  // element. Mixing is_exact in means an exact rebuild of an approximate
  // set always reads as new content, which is what forces the refresh path
  // to republish it (two-phase publication).
  HashCombine(&h, approx_.is_exact ? size_t{1} : size_t{0});
  HashCombine(&h, elements_.size());
  for (const Element& e : elements_) {
    for (int32_t code : e.attrs) HashCombine(&h, code);
    HashCombine(&h, DoubleBits(e.value));
  }
  content_fingerprint_ = static_cast<uint64_t>(h);
}

bool AnswerSet::SameContent(const AnswerSet& other) const {
  if (approx_.is_exact != other.approx_.is_exact ||
      attr_names_ != other.attr_names_ ||
      value_names_ != other.value_names_ ||
      elements_.size() != other.elements_.size()) {
    return false;
  }
  for (size_t i = 0; i < elements_.size(); ++i) {
    if (elements_[i].attrs != other.elements_[i].attrs ||
        DoubleBits(elements_[i].value) !=
            DoubleBits(other.elements_[i].value)) {
      return false;
    }
  }
  return true;
}

const std::string& AnswerSet::ValueName(int a, int32_t code) const {
  QAG_DCHECK(a >= 0 && a < num_attrs());
  QAG_DCHECK(code >= 0 && code < domain_size(a));
  return value_names_[static_cast<size_t>(a)][static_cast<size_t>(code)];
}

double AnswerSet::TopAverage(int l) const {
  QAG_DCHECK(l > 0 && l <= size());
  double sum = 0.0;
  for (int i = 0; i < l; ++i) sum += value(i);
  return sum / l;
}

std::string AnswerSet::ToString(int edge) const {
  std::ostringstream out;
  out << "rank";
  for (const std::string& name : attr_names_) out << "\t" << name;
  out << "\tval";
  if (!approx_.is_exact) out << "\t±";
  out << "\n";
  auto print_row = [&](int i) {
    out << (i + 1);
    const Element& e = element(i);
    for (int a = 0; a < num_attrs(); ++a) {
      out << "\t" << ValueName(a, e.attrs[static_cast<size_t>(a)]);
    }
    out << "\t" << FormatDouble(e.value, 2);
    if (!approx_.is_exact) out << "\t" << FormatDouble(e.bound, 2);
    out << "\n";
  };
  if (size() <= 2 * edge) {
    for (int i = 0; i < size(); ++i) print_row(i);
  } else {
    for (int i = 0; i < edge; ++i) print_row(i);
    out << "...\n";
    for (int i = size() - edge; i < size(); ++i) print_row(i);
  }
  return out.str();
}

}  // namespace qagview::core
