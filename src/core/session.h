#ifndef QAGVIEW_CORE_SESSION_H_
#define QAGVIEW_CORE_SESSION_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "core/hybrid.h"
#include "core/precompute.h"
#include "core/solution_store.h"
#include "storage/table.h"

namespace qagview::core {

/// \brief One interactive exploration session — the server-side state of
/// the Appendix A.3 architecture.
///
/// The paper's prototype keeps a cache between requests: a new aggregate
/// query fully rebuilds it, while parameter-only changes (k, L, D) reuse
/// cached structures. Session implements that policy:
///
///  * the answer set is fixed per session (new query => new session);
///  * cluster universes are cached per L, and a request for L' <= L reuses
///    the widest cached universe (its cluster set is a superset);
///  * precomputed solution stores (the §6.2 grids) are cached per L;
///  * Summarize / Retrieve requests then run at interactive speed.
class Session {
 public:
  /// Creates a session over a materialized answer set.
  static Result<std::unique_ptr<Session>> Create(AnswerSet answers);

  /// Creates a session from an aggregate-query result table.
  static Result<std::unique_ptr<Session>> FromTable(
      const storage::Table& table, const std::string& value_column);

  const AnswerSet& answers() const { return *answers_; }

  /// One-off summarization (Hybrid) under the given parameters; builds or
  /// reuses the universe for params.L.
  Result<Solution> Summarize(const Params& params,
                             const HybridOptions& options = HybridOptions());

  /// Ensures a (k, D) grid serving `top_l` is precomputed and returns the
  /// store (owned by the session). Like UniverseFor, a cached grid for any
  /// L' >= top_l serves the request (Proposition 6.1: the wider grid's
  /// solutions cover the narrower request) — but only when it also covers
  /// the requested (k, D) ranges; otherwise a fresh grid is precomputed.
  Result<const SolutionStore*> Guidance(
      int top_l, const PrecomputeOptions& options = PrecomputeOptions());

  /// Retrieves a precomputed solution; requires a prior Guidance(L') with
  /// L' >= top_l. The narrowest such store that can answer (d, k) serves
  /// the request, consistent with the universe cache.
  Result<Solution> Retrieve(int top_l, int d, int k);

  /// Persists the precomputed grid serving `top_l` (the narrowest cached
  /// store with L' >= top_l) to a file; requires a prior Guidance(L') with
  /// L' >= top_l. The file records the store's own L'. The paper's
  /// prototype keeps these grids in PostgreSQL; this is the file-backed
  /// equivalent.
  Status SaveGuidance(int top_l, const std::string& path) const;

  /// Loads a grid saved by SaveGuidance into this session's cache, skipping
  /// the precompute cost. The file may hold a grid for any L' >= top_l
  /// that this session's answer set can host (SaveGuidance may have
  /// written a wider store); it is cached under its own L'. Fails if the
  /// file was built from a different answer set, or is narrower than
  /// `top_l`.
  Status LoadGuidance(int top_l, const std::string& path);

  /// The universe serving requests at coverage level `top_l` (cached).
  Result<const ClusterUniverse*> UniverseFor(int top_l);

  struct CacheStats {
    int universes = 0;
    int stores = 0;
    int64_t universe_hits = 0;
    int64_t universe_misses = 0;
    int64_t store_hits = 0;
    int64_t store_misses = 0;
  };
  CacheStats cache_stats() const;

  /// Worker count for universe builds and precomputes issued by this
  /// session. <= 0 (the default) uses the hardware concurrency; explicit
  /// PrecomputeOptions::num_threads still wins for that call.
  void set_num_threads(int num_threads) { num_threads_ = num_threads; }
  int num_threads() const { return num_threads_; }

 private:
  explicit Session(std::unique_ptr<AnswerSet> answers)
      : answers_(std::move(answers)) {}

  /// The narrowest cached store with L' >= top_l, or nullptr (counts
  /// store hits/misses).
  const SolutionStore* StoreFor(int top_l) const;

  std::unique_ptr<AnswerSet> answers_;
  // Keyed by the top_l the universe was built for.
  std::map<int, std::unique_ptr<ClusterUniverse>> universes_;
  // Keyed by top_l. A multimap because one L can accumulate several grids
  // (different (k, D) option sets); stores are never evicted or replaced
  // within a session, so pointers returned by Guidance stay valid for the
  // session's lifetime.
  std::multimap<int, std::unique_ptr<SolutionStore>> stores_;
  int num_threads_ = 0;
  int64_t universe_hits_ = 0;
  int64_t universe_misses_ = 0;
  mutable int64_t store_hits_ = 0;
  mutable int64_t store_misses_ = 0;
};

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_SESSION_H_
