#ifndef QAGVIEW_CORE_SESSION_H_
#define QAGVIEW_CORE_SESSION_H_

#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/single_flight.h"
#include "core/hybrid.h"
#include "core/precompute.h"
#include "core/solution_store.h"
#include "storage/table.h"

namespace qagview::core {

/// \brief One interactive exploration session — the server-side state of
/// the Appendix A.3 architecture.
///
/// The paper's prototype keeps a cache between requests: a new aggregate
/// query fully rebuilds it, while parameter-only changes (k, L, D) reuse
/// cached structures. Session implements that policy:
///
///  * the answer set is fixed per session (new query => new session);
///  * cluster universes are cached per L, and a request for L' <= L reuses
///    the widest cached universe (its cluster set is a superset);
///  * precomputed solution stores (the §6.2 grids) are cached per L;
///  * Summarize / Retrieve requests then run at interactive speed.
///
/// **Thread safety.** Every public method may be called concurrently from
/// any number of client threads (the contract the `service::QueryService`
/// layer builds on). The caches are guarded by a shared mutex — reads
/// (cache hits, Retrieve, Summarize over a built universe) take the lock
/// shared and proceed in parallel; cache fills take it exclusively only to
/// publish results. Expensive builds (universe construction, grid
/// precomputes) run *outside* the lock and are **single-flight**: when N
/// clients concurrently miss on the same universe L or the same Guidance
/// (L, options) grid, exactly one performs the build while the others
/// block on the in-flight entry and then serve from cache — never N
/// duplicate precomputes. Coalesced waits are counted in `CacheStats`.
/// Results remain bit-identical to any serial execution order: builds are
/// deterministic in their (answer set, L, options) inputs alone, and
/// stores/universes are immutable once published.
///
/// **Versioned refresh.** The answer set is no longer fixed for the
/// session's lifetime: Refresh() installs the answer set re-executed
/// against a newer table snapshot. Every cached structure records the
/// content fingerprint of the answer set it was built from
/// (`ClusterUniverse::input_fingerprint`,
/// `SolutionStore::input_fingerprint`); when the fingerprints match and
/// an exact content check confirms the re-executed answer set is
/// unchanged, every cache is reused verbatim. When content changed, the
/// caches are *retired* — moved to an internal graveyard, not destroyed —
/// so pointers previously returned by UniverseFor / Guidance / answers()
/// stay valid for the session's lifetime and in-flight readers drain
/// naturally instead of being torn down. Cache admission is guarded by
/// answer-set object identity (exact, collision-free): a build that races
/// a refresh publishes into the graveyard instead of the cache (its
/// result still serves the overlapping request: a linearizable
/// pre-refresh view). The graveyard grows by one generation per
/// content-changing refresh — the price of never invalidating a handed-
/// out pointer; see ROADMAP for refcounted eviction.
class Session {
 public:
  /// Creates a session over a materialized answer set.
  static Result<std::unique_ptr<Session>> Create(AnswerSet answers);

  /// Creates a session from an aggregate-query result table.
  static Result<std::unique_ptr<Session>> FromTable(
      const storage::Table& table, const std::string& value_column);

  /// The current answer set. The reference stays valid for the session's
  /// lifetime even across Refresh() (superseded answer sets are retired,
  /// never destroyed), but after a content-changing refresh it names the
  /// outgoing data — re-call for the current view.
  const AnswerSet& answers() const;

  /// What one Refresh() reused versus rebuilt, for service statistics and
  /// the differential harness.
  struct RefreshStats {
    /// The content fingerprint changed: the new answer set was installed
    /// and mismatched caches were retired. False = provably unchanged,
    /// everything reused, the session keeps serving warm.
    bool refreshed = false;
    /// The attribute/value-name hierarchy (code space) is unchanged, even
    /// if element values moved.
    bool hierarchy_reused = false;
    int universes_reused = 0;
    int universes_retired = 0;
    int stores_reused = 0;
    int stores_retired = 0;
  };

  /// Incremental refresh: hands the session the answer set re-executed
  /// against a newer table snapshot. Compares input fingerprints plus an
  /// exact content check — reuse is provable, not probabilistic: when
  /// unchanged, the new copy is discarded and every cache stays warm; when
  /// changed, the new answer set is installed and every cached universe /
  /// store (all built from the outgoing answer set, by the cache-admission
  /// invariant) is retired into the graveyard. Results after Refresh are
  /// bit-identical to a fresh session built from the same answer set.
  Status Refresh(AnswerSet answers, RefreshStats* stats = nullptr);

  /// What happened to one request, for per-request service statistics:
  /// exactly one of the flags is set by UniverseFor / Guidance; Retrieve
  /// sets `cache_hit` when any cached grid answered.
  struct RequestTrace {
    /// Served from an already-cached structure.
    bool cache_hit = false;
    /// Waited on another client's identical in-flight build instead of
    /// duplicating it (single-flight coalescing).
    bool coalesced = false;
    /// Performed the build (cache miss, this caller was the leader).
    bool built = false;
  };

  /// One-off summarization (Hybrid) under the given parameters; builds or
  /// reuses the universe for params.L.
  Result<Solution> Summarize(const Params& params,
                             const HybridOptions& options = HybridOptions(),
                             RequestTrace* trace = nullptr);

  /// Summarize variant that also reports which cached universe served the
  /// request — the universe the returned Solution's cluster ids index
  /// into. Renderers must use it rather than a second UniverseFor(params.L)
  /// lookup: under concurrency a narrower universe may be published
  /// between the two calls, and cluster ids are only meaningful in the
  /// universe that produced them.
  Result<Solution> SummarizeWith(const Params& params,
                                 const ClusterUniverse** universe_out,
                                 const HybridOptions& options =
                                     HybridOptions(),
                                 RequestTrace* trace = nullptr);

  /// Ensures a (k, D) grid serving `top_l` is precomputed and returns the
  /// store (owned by the session). Like UniverseFor, a cached grid for any
  /// L' >= top_l serves the request (Proposition 6.1: the wider grid's
  /// solutions cover the narrower request) — but only when it also covers
  /// the requested (k, D) ranges; otherwise a fresh grid is precomputed.
  /// Concurrent calls with the same (top_l, options) grid shape coalesce
  /// onto one precompute.
  Result<const SolutionStore*> Guidance(
      int top_l, const PrecomputeOptions& options = PrecomputeOptions(),
      RequestTrace* trace = nullptr);

  /// Retrieves a precomputed solution; requires a prior Guidance(L') with
  /// L' >= top_l. The narrowest such store that can answer (d, k) serves
  /// the request, consistent with the universe cache.
  Result<Solution> Retrieve(int top_l, int d, int k,
                            RequestTrace* trace = nullptr);

  /// Persists the precomputed grid serving `top_l` (the narrowest cached
  /// store with L' >= top_l) to a file; requires a prior Guidance(L') with
  /// L' >= top_l. The file records the store's own L'. The paper's
  /// prototype keeps these grids in PostgreSQL; this is the file-backed
  /// equivalent.
  Status SaveGuidance(int top_l, const std::string& path) const;

  /// Loads a grid saved by SaveGuidance into this session's cache, skipping
  /// the precompute cost. The file may hold a grid for any L' >= top_l
  /// that this session's answer set can host (SaveGuidance may have
  /// written a wider store); it is cached under its own L'. Fails if the
  /// file was built from a different answer set, or is narrower than
  /// `top_l`.
  Status LoadGuidance(int top_l, const std::string& path);

  /// The universe serving requests at coverage level `top_l` (cached;
  /// concurrent misses for the same L coalesce onto one build).
  Result<const ClusterUniverse*> UniverseFor(int top_l,
                                             RequestTrace* trace = nullptr);

  struct CacheStats {
    int universes = 0;
    int stores = 0;
    int64_t universe_hits = 0;
    int64_t universe_misses = 0;
    int64_t store_hits = 0;
    int64_t store_misses = 0;
    /// Requests that blocked on another caller's identical in-flight build
    /// instead of starting their own (each subsequently counts a hit when
    /// it serves from the freshly published cache entry).
    int64_t universe_coalesced = 0;
    int64_t store_coalesced = 0;
    /// Refresh() calls, and the subset that proved the answer set
    /// unchanged and reused every cache.
    int64_t refreshes = 0;
    int64_t refresh_full_reuses = 0;
    /// Structures superseded by refreshes, kept alive in the graveyard.
    int retired_universes = 0;
    int retired_stores = 0;
  };
  CacheStats cache_stats() const;

  /// Worker count for universe builds and precomputes issued by this
  /// session. <= 0 (the default) uses the hardware concurrency; explicit
  /// PrecomputeOptions::num_threads still wins for that call.
  void set_num_threads(int num_threads) {
    num_threads_.store(num_threads, std::memory_order_relaxed);
  }
  int num_threads() const {
    return num_threads_.load(std::memory_order_relaxed);
  }

 private:
  explicit Session(std::unique_ptr<AnswerSet> answers)
      : answers_(std::move(answers)) {}

  /// The narrowest cached store with L' >= top_l, or nullptr (counts
  /// store hits/misses). Caller must hold mu_ (shared suffices).
  const SolutionStore* StoreForLocked(int top_l) const;

  /// The narrowest cached store with L' >= top_l that covers `options`,
  /// or nullptr. Caller must hold mu_ (shared suffices); does not touch
  /// the hit/miss counters.
  const SolutionStore* CoveringStoreLocked(
      int top_l, const PrecomputeOptions& options) const;

  /// The current answer set as a raw pointer (shared lock). The pointee
  /// outlives the session regardless of refreshes, so ops capture it once
  /// at entry and use it consistently.
  const AnswerSet* current_answers() const;

  /// Replaced only by Refresh() under an exclusive lock; superseded answer
  /// sets move to retired_answers_.
  std::unique_ptr<AnswerSet> answers_;

  /// Guards the two caches and the flight maps below. Shared for lookups,
  /// exclusive for publishing. Never held across a build or a flight wait.
  mutable std::shared_mutex mu_;
  // Keyed by the top_l the universe was built for.
  std::map<int, std::unique_ptr<ClusterUniverse>> universes_;
  // Keyed by top_l. A multimap because one L can accumulate several grids
  // (different (k, D) option sets); stores are never evicted or replaced
  // within a session, so pointers returned by Guidance stay valid for the
  // session's lifetime.
  std::multimap<int, std::unique_ptr<SolutionStore>> stores_;
  // In-flight builds: universe flights keyed by top_l (a flight for
  // L' >= top_l satisfies a waiter at top_l), store flights keyed by
  // PrecomputeOptions::CacheKey (exact grid-shape identity).
  std::map<int, std::shared_ptr<FlightLatch>> universe_flights_;
  std::map<std::string, std::shared_ptr<FlightLatch>> store_flights_;

  // Graveyard: structures superseded by Refresh(), kept alive (drained,
  // never torn down) because pointers previously handed to clients promise
  // session-lifetime validity. Stores reference universes, universes
  // reference answer sets — all three generations retire together.
  std::vector<std::unique_ptr<AnswerSet>> retired_answers_;
  std::vector<std::unique_ptr<ClusterUniverse>> retired_universes_;
  std::vector<std::unique_ptr<SolutionStore>> retired_stores_;

  std::atomic<int> num_threads_{0};
  mutable std::atomic<int64_t> universe_hits_{0};
  mutable std::atomic<int64_t> universe_misses_{0};
  mutable std::atomic<int64_t> store_hits_{0};
  mutable std::atomic<int64_t> store_misses_{0};
  mutable std::atomic<int64_t> universe_coalesced_{0};
  mutable std::atomic<int64_t> store_coalesced_{0};
  mutable std::atomic<int64_t> refreshes_{0};
  mutable std::atomic<int64_t> refresh_full_reuses_{0};
};

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_SESSION_H_
