#ifndef QAGVIEW_CORE_SESSION_H_
#define QAGVIEW_CORE_SESSION_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sharded_stats.h"
#include "common/single_flight.h"
#include "core/hybrid.h"
#include "core/precompute.h"
#include "core/solution_store.h"
#include "storage/table.h"

namespace qagview::core {

/// \brief One interactive exploration session — the server-side state of
/// the Appendix A.3 architecture.
///
/// The paper's prototype keeps a cache between requests: a new aggregate
/// query fully rebuilds it, while parameter-only changes (k, L, D) reuse
/// cached structures. Session implements that policy:
///
///  * the answer set is fixed per session (new query => new session);
///  * cluster universes are cached per L, and a request for L' <= L reuses
///    the widest cached universe (its cluster set is a superset);
///  * precomputed solution stores (the §6.2 grids) are cached per L;
///  * Summarize / Retrieve requests then run at interactive speed.
///
/// **Thread safety — the RCU read path.** Every public method may be
/// called concurrently from any number of client threads (the contract the
/// `service::QueryService` layer builds on). The session's entire serving
/// state — the live answer-set generation plus the universe/store cache
/// maps — is one immutable `ReadView` snapshot behind an atomically
/// published pointer. A warm request performs a single atomic load of that
/// pointer, which pins the generation for the request's duration, and then
/// serves every answer/universe/store lookup from the snapshot without
/// acquiring any lock: warm hits are wait-free with respect to writers and
/// to each other, so warm throughput scales with the core count instead of
/// collapsing on a shared mutex. Writers (cache fills, refreshes) never
/// mutate a published view; they take the writer mutex, build a new view
/// copy-on-write, and publish it with an atomic store (pin → serve → drop,
/// classic read-copy-update). Expensive builds still run *outside* the
/// writer lock and are **single-flight**: when N clients concurrently miss
/// on the same universe L or the same Guidance (L, options) grid, exactly
/// one performs the build while the others block on the in-flight entry
/// and then serve from the republished view — never N duplicate
/// precomputes. Coalesced waits are counted in `CacheStats`. Results
/// remain bit-identical to any serial execution order: builds are
/// deterministic in their (answer set, L, options) inputs alone, and
/// views, stores, and universes are immutable once published.
///
/// The per-op statistics counters are sharded per thread
/// (common/sharded_stats.h) and aggregated when `cache_stats()` is read,
/// so the bookkeeping itself is not a point of cacheline contention
/// either. `CacheStats::writer_lock_acquisitions` counts every exclusive
/// acquisition of the writer mutex — the invariant "a warm hit acquires
/// the writer lock zero times" is asserted by tests/read_scaling_test.cc.
///
/// **Versioned refresh and handle lifetime.** The answer set is no longer
/// fixed for the session's lifetime: Refresh() installs the answer set
/// re-executed against a newer table snapshot. Every structure the session
/// hands out — answer sets, cluster universes, solution stores — is
/// returned as a `std::shared_ptr` **handle** whose control block pins the
/// *generation* it belongs to (the answer set plus every universe/store
/// built from it; they reference each other internally and live or die
/// together). When a content-changing refresh supersedes a generation, it
/// is *retired*: dropped from the serving view and tracked in a graveyard
/// ledger, but kept alive exactly as long as at least one external handle
/// (or a reader still inside its pinned view) references it. The moment
/// the last handle drops, the retired generation is destroyed
/// (**drain-then-evict**) — in-flight readers are never torn down, and a
/// session under sustained updates no longer accumulates superseded
/// generations without bound. View admission is guarded by generation
/// identity (exact, collision-free): a build that races a refresh
/// publishes into its own — now retired — generation instead of the view
/// (its result still serves the overlapping request: a linearizable
/// pre-refresh view, pinned by the returned handle). The ownership rule
/// for callers: **never store a raw pointer obtained from a handle; hold
/// the shared_ptr for as long as the structure is read.**
class Session {
 public:
  /// Creates a session over a materialized answer set.
  static Result<std::unique_ptr<Session>> Create(AnswerSet answers);

  /// Creates a session from an aggregate-query result table.
  static Result<std::unique_ptr<Session>> FromTable(
      const storage::Table& table, const std::string& value_column);

  /// A handle to the current answer set. The handle pins its generation:
  /// it stays valid (and bit-identical) after a content-changing Refresh,
  /// but then names the outgoing data — re-call for the current view, and
  /// drop stale handles so retired generations can be evicted. Wait-free:
  /// one atomic view load, no locks.
  std::shared_ptr<const AnswerSet> answers() const;

  /// Exact/approximate provenance of the currently published answer set.
  /// Wait-free (one atomic view load). **Two-phase publication** rides on
  /// the ordinary Refresh machinery: a session created from an approximate
  /// answer set serves it immediately, and when the background exact build
  /// lands, Refresh installs it as a content change — `is_exact`
  /// participates in the content fingerprint and SameContent, so the exact
  /// set is never "full-reused" against its approximate predecessor, even
  /// if every estimate matched. The approximate generation then drains
  /// through the normal graveyard ledger.
  Approximation approximation() const;

  /// What one Refresh() reused versus rebuilt, for service statistics and
  /// the differential harness.
  struct RefreshStats {
    /// The content fingerprint changed: the new answer set was installed
    /// and mismatched caches were retired. False = provably unchanged,
    /// everything reused, the session keeps serving warm.
    bool refreshed = false;
    /// The attribute/value-name hierarchy (code space) is unchanged, even
    /// if element values moved.
    bool hierarchy_reused = false;
    int universes_reused = 0;
    int universes_retired = 0;
    int stores_reused = 0;
    int stores_retired = 0;
  };

  /// Incremental refresh: hands the session the answer set re-executed
  /// against a newer table snapshot. Compares input fingerprints plus an
  /// exact content check — reuse is provable, not probabilistic: when
  /// unchanged, the new copy is discarded and every cache stays warm; when
  /// changed, the new answer set is installed and the outgoing generation
  /// (every cached universe / store, by the view-admission invariant) is
  /// retired — it survives precisely until its last external handle drops,
  /// then is evicted. Readers concurrent with a refresh are never blocked:
  /// they keep serving from whichever view they pinned, and the next
  /// request observes the new one. Results after Refresh are bit-identical
  /// to a fresh session built from the same answer set.
  Status Refresh(AnswerSet answers, RefreshStats* stats = nullptr);

  /// What happened to one request, for per-request service statistics:
  /// exactly one of the flags is set by UniverseFor / Guidance; Retrieve
  /// sets `cache_hit` when any cached grid answered.
  struct RequestTrace {
    /// Served from an already-cached structure.
    bool cache_hit = false;
    /// Waited on another client's identical in-flight build instead of
    /// duplicating it (single-flight coalescing).
    bool coalesced = false;
    /// Performed the build (cache miss, this caller was the leader).
    bool built = false;
  };

  /// One-off summarization (Hybrid) under the given parameters; builds or
  /// reuses the universe for params.L.
  Result<Solution> Summarize(const Params& params,
                             const HybridOptions& options = HybridOptions(),
                             RequestTrace* trace = nullptr);

  /// Summarize variant that also reports which cached universe served the
  /// request — the universe the returned Solution's cluster ids index
  /// into. Renderers must use it rather than a second UniverseFor(params.L)
  /// lookup: under concurrency a narrower universe may be published
  /// between the two calls, and cluster ids are only meaningful in the
  /// universe that produced them.
  Result<Solution> SummarizeWith(
      const Params& params,
      std::shared_ptr<const ClusterUniverse>* universe_out,
      const HybridOptions& options = HybridOptions(),
      RequestTrace* trace = nullptr);

  /// Ensures a (k, D) grid serving `top_l` is precomputed and returns a
  /// handle to the store. Like UniverseFor, a cached grid for any L' >=
  /// top_l serves the request (Proposition 6.1: the wider grid's solutions
  /// cover the narrower request) — but only when it also covers the
  /// requested (k, D) ranges; otherwise a fresh grid is precomputed.
  /// Concurrent calls with the same (top_l, options) grid shape coalesce
  /// onto one precompute. The handle pins the store's generation across
  /// refreshes; drop it when done reading. Warm hits are lock-free.
  Result<std::shared_ptr<const SolutionStore>> Guidance(
      int top_l, const PrecomputeOptions& options = PrecomputeOptions(),
      RequestTrace* trace = nullptr);

  /// Retrieves a precomputed solution; requires a prior Guidance(L') with
  /// L' >= top_l. The narrowest such store that can answer (d, k) serves
  /// the request, consistent with the universe cache. Lock-free.
  Result<Solution> Retrieve(int top_l, int d, int k,
                            RequestTrace* trace = nullptr);

  /// Persists the precomputed grid serving `top_l` (the narrowest cached
  /// store with L' >= top_l) to a file; requires a prior Guidance(L') with
  /// L' >= top_l. The file records the store's own L'. The paper's
  /// prototype keeps these grids in PostgreSQL; this is the file-backed
  /// equivalent.
  Status SaveGuidance(int top_l, const std::string& path) const;

  /// Loads a grid saved by SaveGuidance into this session's cache, skipping
  /// the precompute cost. The file may hold a grid for any L' >= top_l
  /// that this session's answer set can host (SaveGuidance may have
  /// written a wider store); it is cached under its own L'. Fails if the
  /// file was built from a different answer set, or is narrower than
  /// `top_l`.
  Status LoadGuidance(int top_l, const std::string& path);

  /// A serialized guidance grid together with the identity of the answer
  /// set it was built from — the unit persistent warm-start persists and
  /// validates (service/warm_start.h wraps it in an on-disk envelope).
  /// Produced and consumed under one pinned view, so the payload and the
  /// fingerprints are mutually consistent even under concurrent refreshes.
  struct GuidanceSnapshot {
    /// The L the serialized grid was built for.
    int store_l = 0;
    /// Identity of the generating answer set: content fingerprint, code
    /// space, and shape (answers x attributes).
    uint64_t content_fingerprint = 0;
    uint64_t domain_fingerprint = 0;
    int num_answers = 0;
    int num_attrs = 0;
    /// The solution_store_io serialization of the grid.
    std::string payload;
  };

  /// Serializes the narrowest cached grid with L' >= top_l, stamped with
  /// its own generation's answer-set identity; requires a prior
  /// Guidance(L') with L' >= top_l. Read-only and lock-free (one pinned
  /// view), so it may run concurrently with serving traffic.
  Result<GuidanceSnapshot> SnapshotGuidance(int top_l) const;

  /// Installs a grid snapshotted by SnapshotGuidance — possibly in an
  /// earlier process — skipping the precompute cost. Fails cleanly (no
  /// session state changes) unless the snapshot's recorded identity
  /// matches the currently published answer set exactly; the store
  /// deserializer then re-resolves every cluster pattern against the
  /// freshly built universe, so even a fingerprint collision cannot admit
  /// a grid that does not fit this answer set. A stale or damaged
  /// snapshot therefore degrades to a cold build, never a wrong answer.
  Status LoadGuidanceSnapshot(const GuidanceSnapshot& snapshot);

  /// A handle to the universe serving requests at coverage level `top_l`
  /// (cached; concurrent misses for the same L coalesce onto one build).
  /// The handle pins the universe's generation across refreshes. Warm hits
  /// are lock-free.
  Result<std::shared_ptr<const ClusterUniverse>> UniverseFor(
      int top_l, RequestTrace* trace = nullptr);

  struct CacheStats {
    int universes = 0;
    int stores = 0;
    int64_t universe_hits = 0;
    int64_t universe_misses = 0;
    int64_t store_hits = 0;
    int64_t store_misses = 0;
    /// Requests that blocked on another caller's identical in-flight build
    /// instead of starting their own (each subsequently counts a hit when
    /// it serves from the freshly published view).
    int64_t universe_coalesced = 0;
    int64_t store_coalesced = 0;
    /// Refresh() calls, and the subset that proved the answer set
    /// unchanged and reused every cache.
    int64_t refreshes = 0;
    int64_t refresh_full_reuses = 0;
    /// Superseded structures still retained because an external handle
    /// pins their generation (0 once every reader drained).
    int retired_universes = 0;
    int retired_stores = 0;
    /// Retired generations currently retained by external handles.
    int graveyard_size = 0;
    /// Generations currently alive: graveyard_size plus the live one.
    int live_generations = 0;
    /// Retired generations whose readers drained — destroyed, memory
    /// reclaimed. Monotonic; graveyard_size + generations_evicted equals
    /// the number of content-changing refreshes.
    int64_t generations_evicted = 0;
    /// Exclusive acquisitions of the session's writer mutex, ever. The
    /// warm-path invariant — a cache hit takes the writer lock zero times
    /// — is asserted against this counter by read_scaling_test. Only cold
    /// events (misses, publishes, refreshes, loads) may advance it, so
    /// the single relaxed increment per acquisition is itself off the
    /// warm path.
    int64_t writer_lock_acquisitions = 0;
  };
  /// Aggregates the per-thread counter shards. Exact once the counted
  /// requests happen-before the read (e.g. after joining the client
  /// threads); a read racing in-flight requests sees a monotonic snapshot.
  CacheStats cache_stats() const;

  /// Worker count for universe builds and precomputes issued by this
  /// session. <= 0 (the default) uses the hardware concurrency; explicit
  /// PrecomputeOptions::num_threads still wins for that call.
  void set_num_threads(int num_threads) {
    num_threads_.store(num_threads, std::memory_order_relaxed);
  }
  int num_threads() const {
    return num_threads_.load(std::memory_order_relaxed);
  }

 private:
  /// One answer-set generation and everything built from it. Universes
  /// point at the answer set and stores point at universes, so the three
  /// layers retire and die together; every handle the session returns is a
  /// shared_ptr aliased to the owning Generation's control block. The
  /// owning vectors are only mutated under the writer mutex; readers never
  /// touch them (they hold raw pointers handed out inside a pinned view).
  struct Generation {
    std::unique_ptr<AnswerSet> answers;
    std::vector<std::unique_ptr<ClusterUniverse>> universes;
    std::vector<std::unique_ptr<SolutionStore>> stores;
  };

  /// The atomically published serving snapshot: the live generation plus
  /// the cache maps over its structures. Immutable after publication —
  /// every change (cache fill, refresh, load) builds a successor view and
  /// swaps the pointer, so a reader that loaded a view once can serve an
  /// entire request from it without locks or torn state. Invariant: every
  /// map entry points into `generation` (admission compares generation
  /// identity), so a hit returns a handle aliased to that generation's
  /// control block.
  struct ReadView {
    std::shared_ptr<Generation> generation;
    // Keyed by the top_l the universe was built for.
    std::map<int, const ClusterUniverse*> universes;
    // Keyed by top_l. A multimap because one L can accumulate several
    // grids (different (k, D) option sets); within a generation stores
    // are never replaced, so narrower-grid stores keep serving what they
    // cover.
    std::multimap<int, const SolutionStore*> stores;
  };

  /// A universe plus the generation that owns it — the internal currency
  /// of the build paths, which must attach derived structures (stores) to
  /// the same generation they read from.
  struct PinnedUniverse {
    std::shared_ptr<Generation> generation;
    const ClusterUniverse* universe = nullptr;
  };

  /// Per-thread shard of the request counters (relaxed increments on a
  /// thread-local cacheline; summed by cache_stats).
  struct CounterShard {
    std::atomic<int64_t> universe_hits{0};
    std::atomic<int64_t> universe_misses{0};
    std::atomic<int64_t> store_hits{0};
    std::atomic<int64_t> store_misses{0};
    std::atomic<int64_t> universe_coalesced{0};
    std::atomic<int64_t> store_coalesced{0};
    std::atomic<int64_t> refreshes{0};
    std::atomic<int64_t> refresh_full_reuses{0};
  };

  explicit Session(std::unique_ptr<AnswerSet> answers);

  /// The current view — the RCU read-side primitive: one atomic acquire
  /// load; the returned shared_ptr pins the view (and its generation) for
  /// the caller's read.
  std::shared_ptr<const ReadView> CurrentView() const {
    return std::atomic_load_explicit(&view_, std::memory_order_acquire);
  }

  /// Publishes a successor view (release store). Caller holds mu_
  /// exclusively — writers are serialized; readers are never blocked.
  void PublishView(std::shared_ptr<const ReadView> next) {
    std::atomic_store_explicit(&view_, std::move(next),
                               std::memory_order_release);
  }

  /// Acquires the writer mutex, counting the acquisition (the counter
  /// read_scaling_test pins warm-hit wait-freedom against).
  std::unique_lock<std::shared_mutex> WriterLock() const {
    writer_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    return std::unique_lock<std::shared_mutex>(mu_);
  }

  CounterShard& Counters() const { return shards_.Local(); }

  /// UniverseFor, with the owning generation exposed for internal callers
  /// (Guidance / LoadGuidance) that derive stores from the universe.
  Result<PinnedUniverse> PinnedUniverseFor(int top_l, RequestTrace* trace);

  /// The narrowest store in `view` with L' >= top_l covering the resolved
  /// options, or nullptr. Lock-free and allocation-free.
  static const SolutionStore* CoveringStore(const ReadView& view, int top_l,
                                            const PrecomputeOptions& resolved);

  /// Shared admission tail of LoadGuidance / LoadGuidanceSnapshot: attach
  /// the deserialized store to the generation its universe was pinned
  /// from, and publish it into the serving view iff that generation is
  /// still the live one.
  void AdmitLoadedStore(PinnedUniverse pinned, SolutionStore store);

  /// Serializes writers: view publication, the flight maps, the graveyard
  /// ledger, and Generation ownership vectors. Readers take it shared only
  /// on the cold observability path (cache_stats); the warm serving paths
  /// never touch it. Never held across a build or a flight wait.
  mutable std::shared_mutex mu_;

  /// The published serving snapshot; access only through CurrentView /
  /// PublishView (C++17 shared_ptr atomic free functions). The session's
  /// own strong reference to the live generation lives inside it.
  std::shared_ptr<const ReadView> view_;

  // In-flight builds: universe flights keyed by top_l (a flight for
  // L' >= top_l satisfies a waiter at top_l), store flights keyed by
  // PrecomputeOptions::CacheKey (exact grid-shape identity). Guarded by
  // mu_ (miss path only).
  std::map<int, std::shared_ptr<FlightLatch>> universe_flights_;
  std::map<std::string, std::shared_ptr<FlightLatch>> store_flights_;

  /// Graveyard ledger: weak references to retired generations. Holding
  /// them weak is the eviction mechanism — a retired generation's only
  /// strong references are external handles (and momentarily the pinned
  /// views of in-flight readers), so it is destroyed (on whichever thread
  /// drops the last handle) the instant its readers drain; the ledger only
  /// observes that for statistics. Expired entries are pruned on each
  /// refresh. Guarded by mu_.
  std::vector<std::weak_ptr<Generation>> graveyard_;
  /// Content-changing refreshes so far = generations ever retired.
  /// generations_evicted is derived: retired minus still-alive.
  int64_t generations_retired_ = 0;

  std::atomic<int> num_threads_{0};
  mutable Sharded<CounterShard> shards_;
  mutable std::atomic<int64_t> writer_lock_acquisitions_{0};
};

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_SESSION_H_
