#ifndef QAGVIEW_CORE_CLUSTER_H_
#define QAGVIEW_CORE_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "core/answer_set.h"

namespace qagview::core {

/// The don't-care value in a cluster pattern (displayed as '*').
inline constexpr int32_t kWildcard = -1;

/// \brief A cluster: one pattern over the m grouping attributes, each
/// position either a concrete attribute code or kWildcard (Section 3).
///
/// Clusters form a semilattice under the "covers" relation; the level of a
/// cluster is its number of wildcards (level 0 = singleton patterns).
class Cluster {
 public:
  Cluster() = default;
  explicit Cluster(std::vector<int32_t> pattern)
      : pattern_(std::move(pattern)) {}

  /// The singleton cluster of an element (level 0).
  static Cluster Singleton(const Element& e) { return Cluster(e.attrs); }

  /// The trivial cluster (*, *, ..., *) covering everything.
  static Cluster Trivial(int num_attrs) {
    return Cluster(std::vector<int32_t>(static_cast<size_t>(num_attrs),
                                        kWildcard));
  }

  int num_attrs() const { return static_cast<int>(pattern_.size()); }
  int32_t operator[](int i) const { return pattern_[static_cast<size_t>(i)]; }
  bool IsWildcard(int i) const {
    return pattern_[static_cast<size_t>(i)] == kWildcard;
  }
  const std::vector<int32_t>& pattern() const { return pattern_; }

  /// Number of wildcard positions (the cluster's level in the semilattice).
  int level() const;

  /// True iff this cluster covers `other`: every non-wildcard position
  /// matches other's value (Section 3). Reflexive.
  bool Covers(const Cluster& other) const;

  /// True iff this cluster covers the element with the given codes.
  bool CoversElement(const std::vector<int32_t>& attrs) const;

  /// Least common ancestor in the semilattice: keeps positions where the two
  /// patterns agree on a concrete value, wildcards everything else.
  static Cluster Lca(const Cluster& a, const Cluster& b);

  /// Replaces the positions selected by `mask` bits with wildcards; the
  /// generalization masks of an element enumerate its 2^m ancestors.
  static Cluster Generalize(const std::vector<int32_t>& attrs, uint32_t mask);

  /// Renders as "(v1, *, v3, ...)" using the answer set's value names.
  std::string ToString(const AnswerSet& s) const;

  /// Renders codes directly: "(3, *, 0)".
  std::string ToString() const;

  bool operator==(const Cluster& other) const {
    return pattern_ == other.pattern_;
  }
  bool operator!=(const Cluster& other) const { return !(*this == other); }

 private:
  std::vector<int32_t> pattern_;
};

struct ClusterHash {
  size_t operator()(const Cluster& c) const {
    return VectorHash<int32_t>()(c.pattern());
  }
};

/// Distance between two clusters (Definition 3.1): the number of attributes
/// where either side is a wildcard or the values differ. A metric on
/// patterns; equals the maximum element-distance across their extents.
int Distance(const Cluster& a, const Cluster& b);

/// Distance between two elements: number of attributes whose values differ.
int ElementDistance(const std::vector<int32_t>& a,
                    const std::vector<int32_t>& b);

/// Distance between a cluster and an element's singleton cluster.
int DistanceToElement(const Cluster& c, const std::vector<int32_t>& attrs);

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_CLUSTER_H_
