#ifndef QAGVIEW_CORE_PRECOMPUTE_H_
#define QAGVIEW_CORE_PRECOMPUTE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/solution_store.h"

namespace qagview::core {

struct PrecomputeOptions {
  /// k range of interest (grid x-axis of Figure 2). k_max <= 0 derives a
  /// default from the Fixed-Order phase output size.
  int k_min = 2;
  int k_max = 0;
  /// D values to precompute (one Bottom-Up replay each). Empty derives
  /// 1..m — the §6.2 grid rows. D = 0 is additionally accepted as the
  /// explicit "no distance constraint" row (the distance phase is a no-op,
  /// matching Params::D == 0 elsewhere); it is never part of the default.
  std::vector<int> d_values;
  /// Fixed-Order phase budget multiplier (runs once with c·k_max, D=0).
  int c = 3;
  bool use_delta_judgment = true;
  /// Worker count for the per-D Bottom-Up replays (each replay is an
  /// independent read-only pass over the shared universe). <= 0 uses the
  /// hardware concurrency; 1 is the exact serial path. The resulting store
  /// is bit-identical for every thread count.
  int num_threads = 0;

  /// Copy with the derived defaults materialized against a schema of
  /// `num_attrs` grouping attributes: empty `d_values` becomes 1..m and
  /// `k_max <= 0` becomes max(k_min, 20) — exactly the defaults
  /// Precompute::Run applies. Two option sets with equal resolved fields
  /// produce bit-identical stores for a given (universe, top_l).
  /// core::Session's lock-free warm path resolves a request once, against
  /// the schema of the answer-set generation it pinned, and probes every
  /// cached store with the same resolved copy.
  PrecomputeOptions ResolvedFor(int num_attrs) const;

  /// Whether a cached store can serve a request with these options: every
  /// requested D row present, the k range at least as wide on both ends.
  /// `*this` must already be resolved (ResolvedFor) — the check is
  /// allocation-free and lock-free, as required on the warm Guidance hit
  /// path, where it runs once per cached candidate on every request.
  bool CoveredBy(const SolutionStore& store) const;

  /// Stable identity of the resolved (top_l, grid-shape) request, used as
  /// the single-flight coalescing key by core::Session: concurrent
  /// Guidance calls with equal keys trigger exactly one precompute.
  /// `num_threads` is excluded — it never changes the resulting store.
  /// Only computed on the miss path; warm hits never build a key.
  std::string CacheKey(int top_l, int num_attrs) const;
};

/// Wall-clock breakdown of one precompute run (Figures 7c-7f bars).
struct PrecomputeStats {
  double fixed_order_ms = 0.0;
  double bottom_up_ms = 0.0;
  int initial_clusters = 0;
  /// Resolved worker count the Bottom-Up replays actually ran with.
  int num_threads = 1;
  double total_ms() const { return fixed_order_ms + bottom_up_ms; }
};

/// \brief Incremental computation of solutions for all (k, D) combinations
/// at a fixed L (§6.2, Figure 4a).
///
/// Exploits the two-level incremental structure of Hybrid: the Fixed-Order
/// phase is D-independent when run without a distance constraint, so it
/// runs once; its output cluster set is then replayed through the Bottom-Up
/// merge process once per D, and because every round merges clusters, the
/// states visited on the way down are exactly the solutions for every k
/// from c·k_max down to k_min. The traces feed the interval-tree
/// SolutionStore.
class Precompute {
 public:
  static Result<SolutionStore> Run(const ClusterUniverse& universe, int top_l,
                                   const PrecomputeOptions& options =
                                       PrecomputeOptions(),
                                   PrecomputeStats* stats = nullptr);
};

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_PRECOMPUTE_H_
