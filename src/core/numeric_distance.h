#ifndef QAGVIEW_CORE_NUMERIC_DISTANCE_H_
#define QAGVIEW_CORE_NUMERIC_DISTANCE_H_

#include <vector>

#include "common/result.h"
#include "core/answer_set.h"
#include "core/cluster.h"
#include "core/solution.h"

namespace qagview::core {

/// \brief Numeric (Lp-norm) distance functions over clusters — the §9
/// future-work direction "for numeric attributes one can consider other
/// distance functions (e.g., Lp norms)".
///
/// Construction mirrors Definition 3.1's rationale: the paper defines the
/// cluster distance as *the maximum possible distance between any two
/// elements the clusters may contain*. We keep exactly that rule but
/// replace the per-attribute element contribution (0/1: same value or not)
/// with a normalized numeric gap |x − y| / (max − min) for attributes that
/// carry a numeric scale. A wildcard's extent is the whole domain, so it
/// contributes the maximal gap 1 — therefore the Proposition-4.2
/// monotonicity argument survives verbatim (replacing a cluster with an
/// ancestor only widens extents and can only increase distances), and with
/// p = Hamming semantics (every non-identical gap counted as 1) the
/// function reduces to the paper's metric.
class NumericDistanceModel {
 public:
  /// Derives per-attribute scales from the answer set: attributes whose
  /// value names all parse as numbers get a numeric scale (normalized by
  /// the active-domain spread); the rest keep categorical 0/1 semantics.
  static NumericDistanceModel FromAnswerSet(const AnswerSet& s);

  /// Categorical-only model (every attribute 0/1) — reproduces Def 3.1.
  static NumericDistanceModel Categorical(int num_attrs);

  int num_attrs() const { return static_cast<int>(numeric_.size()); }
  bool is_numeric(int a) const { return numeric_[static_cast<size_t>(a)]; }

  /// Per-attribute gap in [0, 1] between the extents of two pattern
  /// positions (kWildcard allowed): the maximum over the two extents, i.e.
  /// 1 if either side is a wildcard or (categorical) the values differ,
  /// else the normalized numeric gap (0 for identical values).
  double AttributeGap(int a, int32_t code_a, int32_t code_b) const;

  /// Lp distance between two clusters: (Σ_a gap_a^p)^(1/p). p >= 1;
  /// p = kInfinity gives the max norm.
  double Distance(const Cluster& a, const Cluster& b, double p) const;

  static constexpr double kInfinity = -1.0;  // sentinel for the max norm

  /// Minimum pairwise Lp distance within a solution — the numeric
  /// diversity analogue of the Definition-4.1 distance constraint, for
  /// post-hoc diversity analysis of solutions produced under the
  /// categorical metric.
  double MinPairwiseDistance(const ClusterUniverse& universe,
                             const Solution& solution, double p) const;

 private:
  std::vector<char> numeric_;
  /// numeric attrs: value of each code on the numeric scale; empty for
  /// categorical attrs.
  std::vector<std::vector<double>> scale_;
  std::vector<double> spread_;  // max - min per numeric attr (>= 0)
};

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_NUMERIC_DISTANCE_H_
