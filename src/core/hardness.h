#ifndef QAGVIEW_CORE_HARDNESS_H_
#define QAGVIEW_CORE_HARDNESS_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "core/answer_set.h"
#include "core/cluster.h"
#include "core/solution.h"

namespace qagview::core {

/// A tripartite graph with vertex classes X, Y, Z; edges connect vertices
/// of different classes. Vertex cover on such graphs is NP-hard [25] and is
/// the source problem of the paper's reductions (Appendix A.2).
struct TripartiteGraph {
  int nx = 0;
  int ny = 0;
  int nz = 0;
  std::vector<std::pair<int, int>> xy;  // (x index, y index)
  std::vector<std::pair<int, int>> yz;  // (y index, z index)
  std::vector<std::pair<int, int>> xz;  // (x index, z index)

  int NumEdges() const {
    return static_cast<int>(xy.size() + yz.size() + xz.size());
  }
  int NumVertices() const { return nx + ny + nz; }
};

/// One vertex: which class (0=X, 1=Y, 2=Z) and its index within the class.
struct Vertex {
  int cls = 0;
  int index = 0;
  bool operator==(const Vertex& other) const {
    return cls == other.cls && index == other.index;
  }
};

/// Exhaustive minimum vertex cover (test oracle; graphs must be tiny).
int MinVertexCoverSize(const TripartiteGraph& g);

/// True iff `cover` touches every edge of g.
bool IsVertexCover(const TripartiteGraph& g, const std::vector<Vertex>& cover);

/// \brief The Theorem A.2 construction (decision version, D=0, L=n,
/// uniform weights): each edge becomes one tuple over 3 attributes with a
/// fresh value padding the third attribute, so that a non-trivial feasible
/// solution with <= M clusters exists iff g has a vertex cover of size
/// <= M.
struct DecisionInstance {
  AnswerSet answers;
  Params params;  // k = M, L = #edges, D = 0
  // Attribute-code of each vertex in its class's attribute (codes of the
  // fresh per-edge values follow after these).
  std::vector<int32_t> x_codes, y_codes, z_codes;
};

Result<DecisionInstance> BuildDecisionInstance(const TripartiteGraph& g,
                                               int m_bound);

/// \brief The Theorem A.1 construction (Max-Avg optimization, k >= L,
/// D = 3): each edge becomes two unit-weight tuples; vertices and fresh
/// values gain zero-weight redundant tuples, so that g has a vertex cover
/// of size <= M iff the optimum value is >= 2·Ne / (2·Ne + M).
struct OptimizationInstance {
  AnswerSet answers;
  Params params;  // k = M, L = 2·#edges, D = 3
  std::vector<int32_t> x_codes, y_codes, z_codes;
  double cover_threshold = 0.0;  // 2Ne / (2Ne + M)
  /// Scale factor applied to the paper's Nr = 2·Ne·Nv padding count
  /// (1 = faithful; smaller keeps test instances tiny).
  int redundancy = 0;
};

Result<OptimizationInstance> BuildOptimizationInstance(
    const TripartiteGraph& g, int m_bound, int redundancy_override = 0);

/// The clusters {(v, *, *) | v in cover} etc. induced by a vertex cover —
/// the (only-if) direction of both reductions. The code arrays come from
/// the instance the clusters will be checked against.
std::vector<Cluster> VertexCoverClusters(const std::vector<Vertex>& cover,
                                         const std::vector<int32_t>& x_codes,
                                         const std::vector<int32_t>& y_codes,
                                         const std::vector<int32_t>& z_codes);

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_HARDNESS_H_
