#include "core/hardness.h"

#include "common/string_util.h"

namespace qagview::core {

namespace {

// Collects all edges as (class pair, endpoints) for cover checking.
bool EdgeCovered(const std::vector<Vertex>& cover, int cls_a, int ia,
                 int cls_b, int ib) {
  for (const Vertex& v : cover) {
    if ((v.cls == cls_a && v.index == ia) ||
        (v.cls == cls_b && v.index == ib)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool IsVertexCover(const TripartiteGraph& g,
                   const std::vector<Vertex>& cover) {
  for (const auto& [x, y] : g.xy) {
    if (!EdgeCovered(cover, 0, x, 1, y)) return false;
  }
  for (const auto& [y, z] : g.yz) {
    if (!EdgeCovered(cover, 1, y, 2, z)) return false;
  }
  for (const auto& [x, z] : g.xz) {
    if (!EdgeCovered(cover, 0, x, 2, z)) return false;
  }
  return true;
}

int MinVertexCoverSize(const TripartiteGraph& g) {
  int n = g.NumVertices();
  QAG_CHECK(n <= 20) << "exhaustive vertex cover oracle limited to 20 nodes";
  std::vector<Vertex> all;
  for (int i = 0; i < g.nx; ++i) all.push_back({0, i});
  for (int i = 0; i < g.ny; ++i) all.push_back({1, i});
  for (int i = 0; i < g.nz; ++i) all.push_back({2, i});
  int best = n;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    int bits = __builtin_popcount(mask);
    if (bits >= best) continue;
    std::vector<Vertex> cover;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) cover.push_back(all[static_cast<size_t>(i)]);
    }
    if (IsVertexCover(g, cover)) best = bits;
  }
  return best;
}

// Shared helper: a 3-attribute value-name table with named vertex values
// plus an allocator for fresh values.
struct DomainBuilder {
  std::vector<std::vector<std::string>> names{3};

  int32_t Vertex(int cls, int index, const char* prefix) {
    names[static_cast<size_t>(cls)].push_back(StrCat(prefix, index));
    return static_cast<int32_t>(names[static_cast<size_t>(cls)].size()) - 1;
  }
  int32_t Fresh(int cls, const std::string& label) {
    names[static_cast<size_t>(cls)].push_back(label);
    return static_cast<int32_t>(names[static_cast<size_t>(cls)].size()) - 1;
  }
};

Result<DecisionInstance> BuildDecisionInstance(const TripartiteGraph& g,
                                               int m_bound) {
  if (g.NumEdges() == 0) {
    return Status::InvalidArgument("graph has no edges");
  }
  DecisionInstance out;
  DomainBuilder dom;
  for (int i = 0; i < g.nx; ++i) out.x_codes.push_back(dom.Vertex(0, i, "x"));
  for (int i = 0; i < g.ny; ++i) out.y_codes.push_back(dom.Vertex(1, i, "y"));
  for (int i = 0; i < g.nz; ++i) out.z_codes.push_back(dom.Vertex(2, i, "z"));

  std::vector<Element> elements;
  int edge_id = 0;
  for (const auto& [x, y] : g.xy) {
    int32_t fresh = dom.Fresh(2, StrCat("Z_e", edge_id++));
    elements.push_back({{out.x_codes[static_cast<size_t>(x)],
                         out.y_codes[static_cast<size_t>(y)], fresh},
                        1.0});
  }
  for (const auto& [y, z] : g.yz) {
    int32_t fresh = dom.Fresh(0, StrCat("X_e", edge_id++));
    elements.push_back({{fresh, out.y_codes[static_cast<size_t>(y)],
                         out.z_codes[static_cast<size_t>(z)]},
                        1.0});
  }
  for (const auto& [x, z] : g.xz) {
    int32_t fresh = dom.Fresh(1, StrCat("Y_e", edge_id++));
    elements.push_back({{out.x_codes[static_cast<size_t>(x)], fresh,
                         out.z_codes[static_cast<size_t>(z)]},
                        1.0});
  }
  QAG_ASSIGN_OR_RETURN(out.answers,
                       AnswerSet::FromRaw({"AX", "AY", "AZ"},
                                          std::move(dom.names),
                                          std::move(elements)));
  out.params.k = m_bound;
  out.params.L = g.NumEdges();
  out.params.D = 0;
  return out;
}

Result<OptimizationInstance> BuildOptimizationInstance(
    const TripartiteGraph& g, int m_bound, int redundancy_override) {
  if (g.NumEdges() == 0) {
    return Status::InvalidArgument("graph has no edges");
  }
  OptimizationInstance out;
  DomainBuilder dom;
  for (int i = 0; i < g.nx; ++i) out.x_codes.push_back(dom.Vertex(0, i, "x"));
  for (int i = 0; i < g.ny; ++i) out.y_codes.push_back(dom.Vertex(1, i, "y"));
  for (int i = 0; i < g.nz; ++i) out.z_codes.push_back(dom.Vertex(2, i, "z"));

  int ne = g.NumEdges();
  int nr = redundancy_override > 0 ? redundancy_override
                                   : 2 * ne * g.NumVertices();
  out.redundancy = nr;

  std::vector<Element> elements;
  int fresh_id = 0;

  // Per edge: two unit-weight top tuples with fresh third-attribute values,
  // and nr zero-weight padding tuples per fresh value (so promoting a fresh
  // value to a selected cluster is never worthwhile).
  auto add_edge = [&](int fresh_cls, int32_t a, int32_t b) {
    for (int copy = 0; copy < 2; ++copy) {
      int32_t fresh = dom.Fresh(fresh_cls, StrCat("e", fresh_id++));
      std::vector<int32_t> attrs(3);
      int pos = 0;
      for (int cls = 0; cls < 3; ++cls) {
        if (cls == fresh_cls) {
          attrs[static_cast<size_t>(cls)] = fresh;
        } else {
          attrs[static_cast<size_t>(cls)] = pos++ == 0 ? a : b;
        }
      }
      elements.push_back({attrs, 1.0});
      for (int r = 0; r < nr; ++r) {
        std::vector<int32_t> pad(3);
        for (int cls = 0; cls < 3; ++cls) {
          pad[static_cast<size_t>(cls)] =
              cls == fresh_cls ? fresh
                               : dom.Fresh(cls, StrCat("pad", fresh_id++));
        }
        elements.push_back({pad, 0.0});
      }
    }
  };
  for (const auto& [x, y] : g.xy) {
    add_edge(2, out.x_codes[static_cast<size_t>(x)],
             out.y_codes[static_cast<size_t>(y)]);
  }
  for (const auto& [y, z] : g.yz) {
    add_edge(0, out.y_codes[static_cast<size_t>(y)],
             out.z_codes[static_cast<size_t>(z)]);
  }
  for (const auto& [x, z] : g.xz) {
    add_edge(1, out.x_codes[static_cast<size_t>(x)],
             out.z_codes[static_cast<size_t>(z)]);
  }

  // Per vertex: one zero-weight redundant tuple with fresh companions, the
  // price a vertex cluster pays for being selected.
  for (int i = 0; i < g.nx; ++i) {
    elements.push_back({{out.x_codes[static_cast<size_t>(i)],
                         dom.Fresh(1, StrCat("g", fresh_id++)),
                         dom.Fresh(2, StrCat("g", fresh_id++))},
                        0.0});
  }
  for (int i = 0; i < g.ny; ++i) {
    elements.push_back({{dom.Fresh(0, StrCat("g", fresh_id++)),
                         out.y_codes[static_cast<size_t>(i)],
                         dom.Fresh(2, StrCat("g", fresh_id++))},
                        0.0});
  }
  for (int i = 0; i < g.nz; ++i) {
    elements.push_back({{dom.Fresh(0, StrCat("g", fresh_id++)),
                         dom.Fresh(1, StrCat("g", fresh_id++)),
                         out.z_codes[static_cast<size_t>(i)]},
                        0.0});
  }

  QAG_ASSIGN_OR_RETURN(out.answers,
                       AnswerSet::FromRaw({"AX", "AY", "AZ"},
                                          std::move(dom.names),
                                          std::move(elements)));
  out.params.k = m_bound;
  out.params.L = 2 * ne;
  out.params.D = 3;
  out.cover_threshold =
      2.0 * ne / (2.0 * ne + static_cast<double>(m_bound));
  return out;
}

std::vector<Cluster> VertexCoverClusters(const std::vector<Vertex>& cover,
                                         const std::vector<int32_t>& x_codes,
                                         const std::vector<int32_t>& y_codes,
                                         const std::vector<int32_t>& z_codes) {
  std::vector<Cluster> out;
  out.reserve(cover.size());
  for (const Vertex& v : cover) {
    std::vector<int32_t> pattern(3, kWildcard);
    const std::vector<int32_t>& codes =
        v.cls == 0 ? x_codes : (v.cls == 1 ? y_codes : z_codes);
    pattern[static_cast<size_t>(v.cls)] =
        codes[static_cast<size_t>(v.index)];
    out.emplace_back(std::move(pattern));
  }
  return out;
}

}  // namespace qagview::core
