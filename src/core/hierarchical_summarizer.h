#ifndef QAGVIEW_CORE_HIERARCHICAL_SUMMARIZER_H_
#define QAGVIEW_CORE_HIERARCHICAL_SUMMARIZER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/hierarchy.h"
#include "core/solution.h"

namespace qagview::core {

/// A summarization output over hierarchy nodes: generalized positions hold
/// range/category nodes (e.g. age [20,60)) instead of '*'.
struct HierarchicalSolution {
  std::vector<HierarchicalCluster> clusters;
  double covered_sum = 0.0;
  int covered_count = 0;
  double average = 0.0;

  int size() const { return static_cast<int>(clusters.size()); }
};

/// \brief The Appendix A.6 extension made executable: Fixed-Order style
/// summarization where generalization steps climb per-attribute concept
/// hierarchies, so clusters read "age in [20,40), hdec in [1975..1985]"
/// rather than "*".
///
/// Semantics mirror the flat core: cover = per-attribute ancestor test;
/// merge = per-attribute LCA (the paper's O(log n) LCA [18] under the
/// hood); distance = the generalized Definition 3.1 (an attribute
/// contributes unless both sides hold the same leaf). Coverage is computed
/// by scanning the answer set — range clusters do not enjoy the 2^m
/// enumeration trick, which is exactly why the paper treats hierarchies as
/// an extension.
class HierarchicalSummarizer {
 public:
  /// `s` must outlive the summarizer; `hierarchies` must have one tree per
  /// attribute with every attribute code bound to a leaf.
  HierarchicalSummarizer(const AnswerSet* s, HierarchySet hierarchies);

  /// Runs the Fixed-Order sweep under the usual (k, L, D) constraints.
  Result<HierarchicalSolution> Run(const Params& params) const;

  /// Runs the Bottom-Up policy (Algorithm 1) over hierarchy nodes: start
  /// from the top-L leaf singletons, merge pairs at distance < D until the
  /// distance constraint holds, then merge down to k clusters, each merge
  /// picking the pair whose per-attribute tree LCA maximizes the tentative
  /// solution average. Distance monotonicity carries over — replacing a
  /// cluster with an ancestor can only turn leaf agreements into internal
  /// nodes, which count like '*' — so merges never create new violations.
  /// Slower than Run but usually higher-valued, mirroring the flat core.
  Result<HierarchicalSolution> RunBottomUp(const Params& params) const;

  /// Elements covered by a hierarchical cluster (ascending ids).
  std::vector<int> Covered(const HierarchicalCluster& c) const;

  /// Feasibility check mirroring Definition 4.1 under hierarchy semantics.
  Status CheckFeasible(const std::vector<HierarchicalCluster>& clusters,
                       const Params& params) const;

  /// "(…) avg …" rendering of a solution.
  std::string Render(const HierarchicalSolution& solution) const;

  const HierarchySet& hierarchies() const { return hierarchies_; }

 private:
  struct Stats {
    double sum = 0.0;
    int count = 0;
  };
  Stats CoveredStats(const HierarchicalCluster& c,
                     std::vector<char>* covered_scratch) const;

  const AnswerSet* s_;
  HierarchySet hierarchies_;
};

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_HIERARCHICAL_SUMMARIZER_H_
