#ifndef QAGVIEW_CORE_ANSWER_SET_H_
#define QAGVIEW_CORE_ANSWER_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace qagview::core {

/// One tuple of the aggregate query answer S: the grouping-attribute values
/// (as dense int32 codes, see AnswerSet) plus the aggregate value. In an
/// approximate answer set, `bound` is the half-width of the two-sided
/// confidence interval around `value` (0.0 in exact sets).
struct Element {
  std::vector<int32_t> attrs;
  double value = 0.0;
  double bound = 0.0;
};

/// \brief Provenance of an answer set: exact, or estimated from a uniform
/// sample with per-element confidence intervals.
///
/// Rides along through summarize/guidance unchanged — the algorithms
/// operate on `value` regardless — and is consulted by the service layer,
/// which stamps responses and decides whether background refinement is
/// still owed. `is_exact` participates in content_fingerprint() and
/// SameContent(), so an exact rebuild of an approximate set never
/// fingerprints as "unchanged" even when every estimate happened to land on
/// the true value: the refresh path always republishes the exact
/// generation.
struct Approximation {
  bool is_exact = true;
  double sample_fraction = 1.0;  // n / N of the sample the set was built from
  double confidence = 0.0;       // two-sided CI level, e.g. 0.95 (0 if exact)
  int64_t sample_rows = 0;       // n (0 if exact)
  int64_t population_rows = 0;   // N (0 if exact)
  double max_bound = 0.0;        // largest element bound (0 if exact)
};

/// z such that a two-sided standard-normal interval [-z, z] has mass
/// `confidence` (e.g. 0.95 -> 1.95996...). Requires confidence in (0, 1).
double TwoSidedNormalQuantile(double confidence);

/// \brief The materialized answer set S of an aggregate query, the input to
/// every summarization algorithm.
///
/// Elements are sorted by value descending (ties broken by attribute codes
/// for determinism), so `element(i)` is the rank-(i+1) answer and the first
/// L elements are S*_L. Every attribute value is interned into a dense
/// int32 code per attribute — the paper's "hash values for fields"
/// optimization — with code->display-string maps retained for rendering.
class AnswerSet {
 public:
  /// Builds from a query-result table. All columns except `value_column`
  /// become grouping attributes (in schema order); `value_column` must be
  /// numeric. Attribute values are interned by display form, so INT64 and
  /// STRING attribute columns both work.
  static Result<AnswerSet> FromTable(const storage::Table& table,
                                     const std::string& value_column);

  /// Like FromTable, but marks the set approximate: `row_se[r]` is the CLT
  /// standard error of row r's value (aligned with `table`'s rows), turned
  /// into per-element bounds at the given two-sided `confidence` level.
  /// Rows whose bound is not finite (no CLT error exists for them) are
  /// dropped — every element of an approximate set carries a usable bound,
  /// by construction. `confidence` must be in (0, 1) and
  /// 0 < sample_rows <= population_rows.
  static Result<AnswerSet> FromTableApproximate(
      const storage::Table& table, const std::string& value_column,
      const std::vector<double>& row_se, double confidence,
      int64_t sample_rows, int64_t population_rows);

  /// Builds directly from attribute-name / value-name tables and elements
  /// (used by tests, generators, and the hardness constructions).
  /// `value_names[a]` maps each attribute-a code to its display string;
  /// element codes must be within range. Elements are re-sorted.
  static Result<AnswerSet> FromRaw(
      std::vector<std::string> attr_names,
      std::vector<std::vector<std::string>> value_names,
      std::vector<Element> elements);

  /// Number of grouping attributes (m).
  int num_attrs() const { return static_cast<int>(attr_names_.size()); }

  /// Number of answer tuples (n).
  int size() const { return static_cast<int>(elements_.size()); }

  /// i-th answer in descending-value order (0-based; rank = i + 1).
  const Element& element(int i) const {
    return elements_[static_cast<size_t>(i)];
  }
  double value(int i) const { return elements_[static_cast<size_t>(i)].value; }

  /// Confidence-interval half-width of the i-th answer (0.0 in exact sets).
  double bound(int i) const { return elements_[static_cast<size_t>(i)].bound; }

  /// Exact/approximate provenance of this set.
  const Approximation& approximation() const { return approx_; }

  const std::vector<Element>& elements() const { return elements_; }
  const std::vector<std::string>& attr_names() const { return attr_names_; }

  /// Domain size of attribute a (number of distinct codes).
  int32_t domain_size(int a) const {
    return static_cast<int32_t>(value_names_[static_cast<size_t>(a)].size());
  }

  /// Display string for a code of attribute a.
  const std::string& ValueName(int a, int32_t code) const;

  /// Average value over all n elements — the value of the trivial solution
  /// (*, *, ..., *), the paper's "Lower Bound" baseline.
  double TrivialAverage() const { return trivial_average_; }

  /// Average value of the top-L elements (an upper bound on any solution
  /// covering exactly the top L).
  double TopAverage(int l) const;

  /// 64-bit content hash of the whole answer set: attribute names, the
  /// per-attribute value-name tables, and every element's codes and value
  /// bits in ranked order. This is the input fingerprint the refresh path
  /// compares — a cached structure built from an answer set with the same
  /// fingerprint (confirmed by SameContent) can be reused verbatim.
  uint64_t content_fingerprint() const { return content_fingerprint_; }

  /// Hash of the attribute/value-name hierarchy alone (names and domains,
  /// no elements): the code space. Two answer sets with equal domain
  /// fingerprints intern every attribute value to the same code even when
  /// the ranked elements differ.
  uint64_t domain_fingerprint() const { return domain_fingerprint_; }

  /// Exact equality of names, domains, and elements (codes plus value bit
  /// patterns). Refresh pairs this with content_fingerprint() so cache
  /// reuse is provable, never probabilistic.
  bool SameContent(const AnswerSet& other) const;

  /// Renders the top and bottom `edge` ranked tuples (Figure 1a style).
  std::string ToString(int edge = 8) const;

 private:
  static Result<AnswerSet> FromTableImpl(const storage::Table& table,
                                         const std::string& value_column,
                                         const std::vector<double>* row_se,
                                         double z, Approximation approx);

  std::vector<std::string> attr_names_;
  std::vector<std::vector<std::string>> value_names_;  // per attr: code->name
  std::vector<Element> elements_;                      // sorted desc by value
  Approximation approx_;
  double trivial_average_ = 0.0;
  uint64_t content_fingerprint_ = 0;
  uint64_t domain_fingerprint_ = 0;

  void SortAndFinalize();
};

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_ANSWER_SET_H_
