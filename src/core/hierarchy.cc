#include "core/hierarchy.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace qagview::core {

int ConceptHierarchy::AddNode(const std::string& label, int parent) {
  QAG_CHECK(!finalized_) << "hierarchy already finalized";
  int id = num_nodes();
  if (id == 0) {
    QAG_CHECK(parent == -1) << "first node must be the root";
  } else {
    QAG_CHECK(parent >= 0 && parent < id)
        << "parent must precede child (got " << parent << ")";
  }
  parent_.push_back(parent);
  depth_.push_back(parent < 0 ? 0 : depth_[static_cast<size_t>(parent)] + 1);
  labels_.push_back(label);
  leaf_code_.push_back(-1);
  return id;
}

Status ConceptHierarchy::BindLeaf(int node, int32_t code) {
  if (node < 0 || node >= num_nodes()) {
    return Status::OutOfRange("no such node");
  }
  if (code < 0) return Status::InvalidArgument("codes must be >= 0");
  if (leaf_code_[static_cast<size_t>(node)] >= 0) {
    return Status::AlreadyExists("node already bound to a code");
  }
  if (static_cast<size_t>(code) >= code_to_node_.size()) {
    code_to_node_.resize(static_cast<size_t>(code) + 1, -1);
  }
  if (code_to_node_[static_cast<size_t>(code)] >= 0) {
    return Status::AlreadyExists(StrCat("code ", code, " already bound"));
  }
  leaf_code_[static_cast<size_t>(node)] = code;
  code_to_node_[static_cast<size_t>(code)] = node;
  return Status::OK();
}

Status ConceptHierarchy::Finalize() {
  if (num_nodes() == 0) return Status::FailedPrecondition("empty hierarchy");
  // Leaves must actually be tree leaves.
  std::vector<char> has_child(static_cast<size_t>(num_nodes()), 0);
  for (int v = 1; v < num_nodes(); ++v) {
    has_child[static_cast<size_t>(parent_[static_cast<size_t>(v)])] = 1;
  }
  for (int v = 0; v < num_nodes(); ++v) {
    if (is_leaf(v) && has_child[static_cast<size_t>(v)]) {
      return Status::FailedPrecondition(
          StrCat("bound node ", v, " has children"));
    }
  }
  int levels = 1;
  while ((1 << levels) < num_nodes()) ++levels;
  up_.assign(static_cast<size_t>(levels) + 1,
             std::vector<int>(static_cast<size_t>(num_nodes())));
  for (int v = 0; v < num_nodes(); ++v) {
    up_[0][static_cast<size_t>(v)] =
        parent_[static_cast<size_t>(v)] < 0 ? 0 : parent_[
            static_cast<size_t>(v)];
  }
  for (size_t j = 1; j < up_.size(); ++j) {
    for (int v = 0; v < num_nodes(); ++v) {
      up_[j][static_cast<size_t>(v)] =
          up_[j - 1][static_cast<size_t>(up_[j - 1][static_cast<size_t>(v)])];
    }
  }
  finalized_ = true;
  return Status::OK();
}

int ConceptHierarchy::LeafNode(int32_t code) const {
  if (code < 0 || static_cast<size_t>(code) >= code_to_node_.size()) {
    return -1;
  }
  return code_to_node_[static_cast<size_t>(code)];
}

int ConceptHierarchy::Lca(int a, int b) const {
  QAG_CHECK(finalized_) << "call Finalize() first";
  QAG_DCHECK(a >= 0 && a < num_nodes() && b >= 0 && b < num_nodes());
  if (depth(a) < depth(b)) std::swap(a, b);
  int diff = depth(a) - depth(b);
  for (size_t j = 0; j < up_.size(); ++j) {
    if (diff & (1 << j)) a = up_[j][static_cast<size_t>(a)];
  }
  if (a == b) return a;
  for (size_t j = up_.size(); j-- > 0;) {
    if (up_[j][static_cast<size_t>(a)] != up_[j][static_cast<size_t>(b)]) {
      a = up_[j][static_cast<size_t>(a)];
      b = up_[j][static_cast<size_t>(b)];
    }
  }
  return up_[0][static_cast<size_t>(a)];
}

bool ConceptHierarchy::IsAncestor(int ancestor, int node) const {
  return Lca(ancestor, node) == ancestor;
}

ConceptHierarchy ConceptHierarchy::Flat(int num_leaves) {
  std::vector<std::string> labels;
  labels.reserve(static_cast<size_t>(num_leaves));
  for (int i = 0; i < num_leaves; ++i) labels.push_back(StrCat("v", i));
  return Flat(labels);
}

ConceptHierarchy ConceptHierarchy::Flat(
    const std::vector<std::string>& leaf_labels) {
  ConceptHierarchy h;
  h.AddNode("*");
  for (size_t i = 0; i < leaf_labels.size(); ++i) {
    int node = h.AddNode(leaf_labels[i], h.root());
    QAG_CHECK_OK(h.BindLeaf(node, static_cast<int32_t>(i)));
  }
  QAG_CHECK_OK(h.Finalize());
  return h;
}

namespace {
// Recursively builds the balanced range node over [lo, hi].
void BuildRange(ConceptHierarchy* h, const std::vector<std::string>& labels,
                int parent, int lo, int hi) {
  if (lo == hi) {
    int node = h->AddNode(labels[static_cast<size_t>(lo)], parent);
    QAG_CHECK_OK(h->BindLeaf(node, lo));
    return;
  }
  int node = h->AddNode(StrCat("[", labels[static_cast<size_t>(lo)], "..",
                               labels[static_cast<size_t>(hi)], "]"),
                        parent);
  int mid = lo + (hi - lo) / 2;
  BuildRange(h, labels, node, lo, mid);
  BuildRange(h, labels, node, mid + 1, hi);
}
}  // namespace

ConceptHierarchy ConceptHierarchy::BinaryRanges(
    const std::vector<std::string>& leaf_labels) {
  QAG_CHECK(!leaf_labels.empty());
  ConceptHierarchy h;
  h.AddNode("*");
  if (leaf_labels.size() == 1) {
    int node = h.AddNode(leaf_labels[0], h.root());
    QAG_CHECK_OK(h.BindLeaf(node, 0));
  } else {
    int mid = (static_cast<int>(leaf_labels.size()) - 1) / 2;
    BuildRange(&h, leaf_labels, h.root(), 0, mid);
    BuildRange(&h, leaf_labels, h.root(), mid + 1,
               static_cast<int>(leaf_labels.size()) - 1);
  }
  QAG_CHECK_OK(h.Finalize());
  return h;
}

namespace {

// Partitions n items with the given weights into `groups` contiguous
// nonempty groups, cutting when the running prefix reaches the global
// targets total·(g+1)/groups. Returns the item count of each group.
std::vector<int> BalancedPartition(const std::vector<double>& weights,
                                   int groups) {
  const int n = static_cast<int>(weights.size());
  QAG_DCHECK(groups >= 1 && groups <= n);
  double total = 0.0;
  for (double w : weights) total += w;
  std::vector<int> counts;
  counts.reserve(static_cast<size_t>(groups));
  int i = 0;
  double cum = 0.0;
  for (int g = 0; g < groups; ++g) {
    if (g == groups - 1) {
      counts.push_back(n - i);
      break;
    }
    int max_take = n - i - (groups - g - 1);  // leave >= 1 per later group
    double target = total * (g + 1) / groups;
    int taken = 0;
    while (taken < max_take && (taken == 0 || cum < target)) {
      cum += weights[static_cast<size_t>(i)];
      ++i;
      ++taken;
    }
    counts.push_back(taken);
  }
  return counts;
}

}  // namespace

Result<ConceptHierarchy> ConceptHierarchy::WeightedRanges(
    const std::vector<std::string>& leaf_labels,
    const std::vector<int32_t>& leaf_codes,
    const std::vector<double>& weights, int fanout) {
  const int n = static_cast<int>(leaf_labels.size());
  if (n == 0) return Status::InvalidArgument("no leaves");
  if (static_cast<int>(leaf_codes.size()) != n) {
    return Status::InvalidArgument("leaf_codes size mismatch");
  }
  if (!weights.empty() && static_cast<int>(weights.size()) != n) {
    return Status::InvalidArgument("weights size mismatch");
  }
  if (fanout < 2) return Status::InvalidArgument("fanout must be >= 2");
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("weights must be >= 0");
  }

  // Level structure over leaf-index ranges, bottom-up. levels[0] = leaves;
  // each higher level groups ~fanout consecutive nodes balanced by weight.
  struct LevelNode {
    int lo = 0;
    int hi = 0;
    double weight = 0.0;
    std::vector<int> children;  // indices into the level below
  };
  std::vector<std::vector<LevelNode>> levels(1);
  for (int i = 0; i < n; ++i) {
    levels[0].push_back(
        {i, i, weights.empty() ? 1.0 : weights[static_cast<size_t>(i)], {}});
  }
  while (static_cast<int>(levels.back().size()) > 1) {
    const std::vector<LevelNode>& below = levels.back();
    int count = static_cast<int>(below.size());
    int groups = (count + fanout - 1) / fanout;
    std::vector<double> node_weights;
    node_weights.reserve(static_cast<size_t>(count));
    for (const LevelNode& node : below) node_weights.push_back(node.weight);
    std::vector<int> counts = BalancedPartition(node_weights, groups);

    std::vector<LevelNode> above;
    above.reserve(static_cast<size_t>(groups));
    int i = 0;
    for (int take : counts) {
      LevelNode parent;
      parent.lo = below[static_cast<size_t>(i)].lo;
      parent.hi = below[static_cast<size_t>(i + take - 1)].hi;
      for (int c = 0; c < take; ++c) {
        parent.weight += below[static_cast<size_t>(i + c)].weight;
        parent.children.push_back(i + c);
      }
      i += take;
      above.push_back(std::move(parent));
    }
    levels.push_back(std::move(above));
  }

  // Materialize top-down; the (single) top node is the root '*'.
  ConceptHierarchy h;
  std::vector<std::vector<int>> ids(levels.size());
  int top = static_cast<int>(levels.size()) - 1;
  ids[static_cast<size_t>(top)].push_back(h.AddNode("*"));
  for (int level = top; level >= 1; --level) {
    ids[static_cast<size_t>(level - 1)].assign(
        levels[static_cast<size_t>(level - 1)].size(), -1);
    for (size_t p = 0; p < levels[static_cast<size_t>(level)].size(); ++p) {
      const LevelNode& parent = levels[static_cast<size_t>(level)][p];
      int parent_id = ids[static_cast<size_t>(level)][p];
      for (int child : parent.children) {
        const LevelNode& node =
            levels[static_cast<size_t>(level - 1)][static_cast<size_t>(child)];
        int id;
        if (level - 1 == 0) {
          id = h.AddNode(leaf_labels[static_cast<size_t>(node.lo)], parent_id);
          QAG_RETURN_IF_ERROR(
              h.BindLeaf(id, leaf_codes[static_cast<size_t>(node.lo)]));
        } else {
          id = h.AddNode(
              StrCat("[", leaf_labels[static_cast<size_t>(node.lo)], "..",
                     leaf_labels[static_cast<size_t>(node.hi)], "]"),
              parent_id);
        }
        ids[static_cast<size_t>(level - 1)][static_cast<size_t>(child)] = id;
      }
    }
  }
  // Degenerate single-leaf domain: hang the leaf under the root.
  if (n == 1 && h.num_nodes() == 1) {
    int id = h.AddNode(leaf_labels[0], h.root());
    QAG_RETURN_IF_ERROR(h.BindLeaf(id, leaf_codes[0]));
  }
  QAG_RETURN_IF_ERROR(h.Finalize());
  return h;
}

Result<ConceptHierarchy> AutoHierarchyForAttribute(
    const AnswerSet& s, int attr, const AutoHierarchyOptions& options) {
  if (attr < 0 || attr >= s.num_attrs()) {
    return Status::InvalidArgument(StrCat("no attribute ", attr));
  }
  const int domain = s.domain_size(attr);
  if (domain == 0) {
    return Status::InvalidArgument("attribute has an empty domain");
  }

  // Order leaves numerically when every value name parses as a number
  // (ages, years, buckets); otherwise lexicographically.
  std::vector<int32_t> codes(static_cast<size_t>(domain));
  std::vector<double> numeric(static_cast<size_t>(domain));
  bool all_numeric = true;
  for (int32_t c = 0; c < domain; ++c) {
    codes[static_cast<size_t>(c)] = c;
    auto parsed = ParseDouble(s.ValueName(attr, c));
    if (parsed.ok()) {
      numeric[static_cast<size_t>(c)] = *parsed;
    } else {
      all_numeric = false;
    }
  }
  std::stable_sort(codes.begin(), codes.end(), [&](int32_t a, int32_t b) {
    if (all_numeric) {
      return numeric[static_cast<size_t>(a)] < numeric[static_cast<size_t>(b)];
    }
    return s.ValueName(attr, a) < s.ValueName(attr, b);
  });

  std::vector<std::string> labels;
  labels.reserve(static_cast<size_t>(domain));
  for (int32_t c : codes) labels.push_back(s.ValueName(attr, c));

  std::vector<double> weights;
  if (options.weight_by_frequency) {
    std::vector<double> by_code(static_cast<size_t>(domain), 0.0);
    for (const Element& e : s.elements()) {
      by_code[static_cast<size_t>(e.attrs[static_cast<size_t>(attr)])] += 1.0;
    }
    weights.reserve(static_cast<size_t>(domain));
    for (int32_t c : codes) weights.push_back(by_code[static_cast<size_t>(c)]);
  }
  return ConceptHierarchy::WeightedRanges(labels, codes, weights,
                                          options.fanout);
}

HierarchicalCluster HierarchySet::FromElement(
    const std::vector<int32_t>& attrs) const {
  QAG_DCHECK(static_cast<int>(attrs.size()) == num_attrs());
  HierarchicalCluster out;
  out.nodes.reserve(attrs.size());
  for (int a = 0; a < num_attrs(); ++a) {
    int node = hierarchy(a).LeafNode(attrs[static_cast<size_t>(a)]);
    QAG_CHECK(node >= 0) << "attribute code without a bound leaf";
    out.nodes.push_back(node);
  }
  return out;
}

bool HierarchySet::Covers(const HierarchicalCluster& a,
                          const HierarchicalCluster& b) const {
  for (int i = 0; i < num_attrs(); ++i) {
    if (!hierarchy(i).IsAncestor(a.nodes[static_cast<size_t>(i)],
                                 b.nodes[static_cast<size_t>(i)])) {
      return false;
    }
  }
  return true;
}

HierarchicalCluster HierarchySet::Lca(const HierarchicalCluster& a,
                                      const HierarchicalCluster& b) const {
  HierarchicalCluster out;
  out.nodes.reserve(static_cast<size_t>(num_attrs()));
  for (int i = 0; i < num_attrs(); ++i) {
    out.nodes.push_back(hierarchy(i).Lca(a.nodes[static_cast<size_t>(i)],
                                         b.nodes[static_cast<size_t>(i)]));
  }
  return out;
}

int HierarchySet::Distance(const HierarchicalCluster& a,
                           const HierarchicalCluster& b) const {
  int d = 0;
  for (int i = 0; i < num_attrs(); ++i) {
    int na = a.nodes[static_cast<size_t>(i)];
    int nb = b.nodes[static_cast<size_t>(i)];
    bool same_leaf = na == nb && hierarchy(i).is_leaf(na);
    d += !same_leaf;
  }
  return d;
}

std::string HierarchySet::Render(const HierarchicalCluster& c) const {
  std::vector<std::string> parts;
  parts.reserve(c.nodes.size());
  for (int i = 0; i < num_attrs(); ++i) {
    parts.push_back(hierarchy(i).label(c.nodes[static_cast<size_t>(i)]));
  }
  return StrCat("(", Join(parts, ", "), ")");
}

}  // namespace qagview::core
