#include "core/greedy_state.h"

#include <algorithm>

namespace qagview::core {

GreedyState::GreedyState(const ClusterUniverse* universe,
                         bool use_delta_judgment)
    : universe_(universe), use_delta_(use_delta_judgment) {
  QAG_CHECK(universe != nullptr);
  covered_.assign(static_cast<size_t>(universe->answer_set().size()), 0);
}

void GreedyState::RefreshDelta(int id, Delta* delta) {
  const std::vector<int32_t>& tc = universe_->covered(id);
  const AnswerSet& s = universe_->answer_set();
  const int top_l = universe_->top_l();
  if (delta->stamp == round_) return;  // up to date
  if (use_delta_ && delta->stamp == round_ - 1 && round_ >= 1) {
    // Incremental path (Algorithm 2): only the elements that became covered
    // last round can leave Tc \ T. Compare the difference list against Tc.
    for (int32_t e : last_diff_) {
      ++comparisons_;
      if (std::binary_search(tc.begin(), tc.end(), e)) {
        delta->sum -= s.value(e);
        --delta->count;
        if (e < top_l) --delta->count_top;
      }
    }
  } else {
    // Full recomputation: scan Tc against the covered set.
    delta->sum = 0.0;
    delta->count = 0;
    delta->count_top = 0;
    for (int32_t e : tc) {
      ++comparisons_;
      if (!covered_[static_cast<size_t>(e)]) {
        delta->sum += s.value(e);
        ++delta->count;
        if (e < top_l) ++delta->count_top;
      }
    }
  }
  delta->stamp = round_;
}

GreedyState::Delta& GreedyState::DeltaFor(int id, Delta* scratch) {
  if (!use_delta_) {
    // Naive evaluation: rescan the candidate's tuple list every time.
    scratch->stamp = -1;
    RefreshDelta(id, scratch);
    return *scratch;
  }
  Delta& delta = deltas_[id];
  RefreshDelta(id, &delta);
  return delta;
}

double GreedyState::TentativeAverage(int id) {
  Delta scratch;
  const Delta& delta = DeltaFor(id, &scratch);
  int total = covered_count_ + delta.count;
  return total == 0 ? 0.0 : (covered_sum_ + delta.sum) / total;
}

int GreedyState::TentativeRedundant(int id) {
  Delta scratch;
  const Delta& delta = DeltaFor(id, &scratch);
  return delta.count - delta.count_top;
}

double GreedyState::TentativeMin(int id) const {
  const std::vector<int32_t>& tc = universe_->covered(id);
  QAG_DCHECK(!tc.empty());
  // min is idempotent, so taking the cluster's own min (its last covered
  // element) is exact even when some of its elements are already covered.
  double cluster_min = universe_->answer_set().value(tc.back());
  return std::min(covered_min_, cluster_min);
}

void GreedyState::AddCluster(int id) {
  const AnswerSet& s = universe_->answer_set();
  // Extend coverage, recording this round's difference list.
  last_diff_.clear();
  for (int32_t e : universe_->covered(id)) {
    if (!covered_[static_cast<size_t>(e)]) {
      covered_[static_cast<size_t>(e)] = 1;
      covered_sum_ += s.value(e);
      covered_min_ = std::min(covered_min_, s.value(e));
      ++covered_count_;
      if (e < universe_->top_l()) ++covered_top_count_;
      last_diff_.push_back(e);
    }
  }
  ++round_;

  // Incomparability: drop clusters subsumed by the newcomer. The newcomer
  // cannot itself be covered by a member (that would mean the member already
  // covered both merge endpoints, contradicting the antichain invariant).
  const Cluster& newcomer = universe_->cluster(id);
  clusters_.erase(std::remove_if(clusters_.begin(), clusters_.end(),
                                 [&](int other) {
                                   return newcomer.Covers(
                                       universe_->cluster(other));
                                 }),
                  clusters_.end());
  for (int other : clusters_) {
    QAG_DCHECK(!universe_->cluster(other).Covers(newcomer))
        << "newcomer covered by existing cluster";
  }
  clusters_.push_back(id);
}

}  // namespace qagview::core
