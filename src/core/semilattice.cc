#include "core/semilattice.h"

#include <algorithm>

#include "common/flat_map.h"
#include "common/string_util.h"

namespace qagview::core {

bool ClusterUniverse::CanPack(const AnswerSet& s) {
  if (s.num_attrs() > 8) return false;
  for (int a = 0; a < s.num_attrs(); ++a) {
    if (s.domain_size(a) > 254) return false;  // code+1 must fit a byte
  }
  return true;
}

uint64_t ClusterUniverse::PackPattern(const std::vector<int32_t>& pattern) {
  uint64_t key = 0;
  for (size_t a = 0; a < pattern.size(); ++a) {
    uint64_t lane =
        pattern[a] == kWildcard ? 0 : static_cast<uint64_t>(pattern[a]) + 1;
    key |= lane << (8 * a);
  }
  return key;
}

Result<ClusterUniverse> ClusterUniverse::Build(const AnswerSet* s, int top_l,
                                               const Options& options) {
  QAG_CHECK(s != nullptr);
  int m = s->num_attrs();
  if (m > options.max_attrs || m > 30) {
    return Status::InvalidArgument(
        StrCat("refusing to enumerate 2^", m,
               " generalizations per element; reduce the number of "
               "group-by attributes (max ", options.max_attrs, ")"));
  }
  if (top_l < 1 || top_l > s->size()) {
    return Status::InvalidArgument(
        StrCat("L must be in [1, n=", s->size(), "], got ", top_l));
  }

  ClusterUniverse u;
  u.answer_set_ = s;
  u.top_l_ = top_l;
  u.packed_ = CanPack(*s);

  const uint32_t num_masks = 1u << m;
  std::vector<int32_t> scratch(static_cast<size_t>(m));
  u.singleton_ids_.resize(static_cast<size_t>(top_l));

  if (u.packed_) {
    // Per-mask lane masks: 0xFF in every wildcarded byte lane, so
    // "generalize element under mask" is one AND-NOT.
    std::vector<uint64_t> lane_mask(num_masks, 0);
    for (uint32_t mask = 0; mask < num_masks; ++mask) {
      uint64_t lanes = 0;
      for (int a = 0; a < m; ++a) {
        if (mask & (1u << a)) lanes |= 0xFFULL << (8 * a);
      }
      lane_mask[mask] = lanes;
    }

    u.packed_ids_.Reset(static_cast<size_t>(top_l) * num_masks);
    for (int i = 0; i < top_l; ++i) {
      const std::vector<int32_t>& attrs = s->element(i).attrs;
      uint64_t base = PackPattern(attrs);
      for (uint32_t mask = 0; mask < num_masks; ++mask) {
        uint64_t key = base & ~lane_mask[mask];
        auto [id, inserted] = u.packed_ids_.FindOrInsert(
            key, static_cast<int32_t>(u.clusters_.size()));
        if (inserted) {
          for (int a = 0; a < m; ++a) {
            scratch[static_cast<size_t>(a)] =
                (mask & (1u << a)) ? kWildcard
                                   : attrs[static_cast<size_t>(a)];
          }
          u.clusters_.emplace_back(scratch);
        }
        if (mask == 0) u.singleton_ids_[static_cast<size_t>(i)] = id;
      }
    }

    const int num_clusters = static_cast<int>(u.clusters_.size());
    u.covered_.resize(static_cast<size_t>(num_clusters));
    u.covered_sum_.assign(static_cast<size_t>(num_clusters), 0.0);
    u.top_covered_count_.assign(static_cast<size_t>(num_clusters), 0);

    if (options.naive_mapping) {
      for (int id = 0; id < num_clusters; ++id) {
        const Cluster& c = u.clusters_[static_cast<size_t>(id)];
        for (int e = 0; e < s->size(); ++e) {
          if (c.CoversElement(s->element(e).attrs)) {
            u.covered_[static_cast<size_t>(id)].push_back(e);
            u.covered_sum_[static_cast<size_t>(id)] += s->value(e);
            if (e < top_l) ++u.top_covered_count_[static_cast<size_t>(id)];
          }
        }
      }
    } else {
      for (int e = 0; e < s->size(); ++e) {
        uint64_t base = PackPattern(s->element(e).attrs);
        double value = s->value(e);
        for (uint32_t mask = 0; mask < num_masks; ++mask) {
          int id = u.packed_ids_.FindOr(base & ~lane_mask[mask], -1);
          if (id < 0) continue;
          u.covered_[static_cast<size_t>(id)].push_back(e);
          u.covered_sum_[static_cast<size_t>(id)] += value;
          if (e < top_l) ++u.top_covered_count_[static_cast<size_t>(id)];
        }
      }
    }
    return u;
  }

  // --- Fallback: vector-keyed index (m > 8 or large domains). ---
  u.ids_.reserve(static_cast<size_t>(top_l) * num_masks);
  for (int i = 0; i < top_l; ++i) {
    const std::vector<int32_t>& attrs = s->element(i).attrs;
    for (uint32_t mask = 0; mask < num_masks; ++mask) {
      for (int a = 0; a < m; ++a) {
        scratch[static_cast<size_t>(a)] =
            (mask & (1u << a)) ? kWildcard : attrs[static_cast<size_t>(a)];
      }
      auto [it, inserted] =
          u.ids_.emplace(scratch, static_cast<int>(u.clusters_.size()));
      if (inserted) u.clusters_.emplace_back(scratch);
      if (mask == 0) u.singleton_ids_[static_cast<size_t>(i)] = it->second;
    }
  }

  const int num_clusters = static_cast<int>(u.clusters_.size());
  u.covered_.resize(static_cast<size_t>(num_clusters));
  u.covered_sum_.assign(static_cast<size_t>(num_clusters), 0.0);
  u.top_covered_count_.assign(static_cast<size_t>(num_clusters), 0);

  if (options.naive_mapping) {
    // Ablation: each cluster scans every element.
    for (int id = 0; id < num_clusters; ++id) {
      const Cluster& c = u.clusters_[static_cast<size_t>(id)];
      for (int e = 0; e < s->size(); ++e) {
        if (c.CoversElement(s->element(e).attrs)) {
          u.covered_[static_cast<size_t>(id)].push_back(e);
          u.covered_sum_[static_cast<size_t>(id)] += s->value(e);
          if (e < top_l) ++u.top_covered_count_[static_cast<size_t>(id)];
        }
      }
    }
  } else {
    // Optimized: each element probes the hash index with its own masks.
    // A cluster covers element e iff it equals one generalization of e,
    // so every (cluster, element) pair is found exactly once.
    for (int e = 0; e < s->size(); ++e) {
      const std::vector<int32_t>& attrs = s->element(e).attrs;
      for (uint32_t mask = 0; mask < num_masks; ++mask) {
        for (int a = 0; a < m; ++a) {
          scratch[static_cast<size_t>(a)] =
              (mask & (1u << a)) ? kWildcard : attrs[static_cast<size_t>(a)];
        }
        auto it = u.ids_.find(scratch);
        if (it == u.ids_.end()) continue;
        int id = it->second;
        u.covered_[static_cast<size_t>(id)].push_back(e);
        u.covered_sum_[static_cast<size_t>(id)] += s->value(e);
        if (e < top_l) ++u.top_covered_count_[static_cast<size_t>(id)];
      }
    }
  }
  return u;
}

int ClusterUniverse::FindId(const Cluster& c) const {
  if (packed_) {
    return packed_ids_.FindOr(PackPattern(c.pattern()), -1);
  }
  auto it = ids_.find(c.pattern());
  return it == ids_.end() ? -1 : it->second;
}

int ClusterUniverse::LcaId(int a, int b) const {
  if (a > b) std::swap(a, b);
  uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
                 static_cast<uint32_t>(b);
  auto it = lca_cache_.find(key);
  if (it != lca_cache_.end()) return it->second;
  Cluster lca = Cluster::Lca(cluster(a), cluster(b));
  int id = FindId(lca);
  QAG_CHECK(id >= 0) << "LCA closure violated for " << cluster(a).ToString()
                     << " and " << cluster(b).ToString();
  lca_cache_.emplace(key, id);
  return id;
}

std::vector<int> ClusterUniverse::LevelStartIds(int level) const {
  QAG_CHECK(level >= 0 && level <= answer_set_->num_attrs());
  int m = answer_set_->num_attrs();
  uint32_t mask = 0;
  for (int a = 0; a < level; ++a) mask |= 1u << (m - 1 - a);
  std::vector<int> out;
  std::vector<char> seen(static_cast<size_t>(num_clusters()), 0);
  for (int i = 0; i < top_l_; ++i) {
    Cluster c = Cluster::Generalize(answer_set_->element(i).attrs, mask);
    int id = FindId(c);
    QAG_CHECK(id >= 0);
    if (!seen[static_cast<size_t>(id)]) {
      seen[static_cast<size_t>(id)] = 1;
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace qagview::core
