#include "core/semilattice.h"

#include <algorithm>

#include "common/flat_map.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace qagview::core {

namespace {

/// Merges per-worker coverage buffers (each holding the hits of one
/// contiguous, ascending element range, in shard order) into the universe
/// arrays. Sums and top-L counts are recomputed by walking each merged list
/// in ascending element order — exactly the serial accumulation order — so
/// covered_, covered_sum_, and top_covered_count_ are bit-identical to the
/// single-threaded scan for every thread count.
void MergeShardCoverage(
    const AnswerSet& s, int top_l,
    const std::vector<std::vector<std::vector<int32_t>>>& shards,
    ThreadPool& pool, std::vector<std::vector<int32_t>>* covered,
    std::vector<double>* covered_sum, std::vector<int>* top_covered_count) {
  pool.ParallelFor(
      0, static_cast<int64_t>(covered->size()), [&](int64_t id) {
        size_t i = static_cast<size_t>(id);
        std::vector<int32_t>& out = (*covered)[i];
        size_t total = 0;
        for (const auto& shard : shards) {
          if (!shard.empty()) total += shard[i].size();
        }
        out.reserve(total);
        for (const auto& shard : shards) {
          // A shard stays unallocated when its element range was empty.
          if (shard.empty()) continue;
          out.insert(out.end(), shard[i].begin(), shard[i].end());
        }
        double sum = 0.0;
        int top = 0;
        for (int32_t e : out) {
          sum += s.value(e);
          if (e < top_l) ++top;
        }
        (*covered_sum)[i] = sum;
        (*top_covered_count)[i] = top;
      });
}

}  // namespace

bool ClusterUniverse::CanPack(const AnswerSet& s) {
  int m = s.num_attrs();
  if (m > 8) return false;
  // The packed lane stores code+1 (wildcard = 0), so codes 0..254 — a
  // domain of exactly 255 values — fit a byte.
  bool every_lane_can_saturate = (m == 8);
  for (int a = 0; a < m; ++a) {
    if (s.domain_size(a) > 255) return false;
    if (s.domain_size(a) < 255) every_lane_can_saturate = false;
  }
  // Corner: with 8 attributes all at the full 255-value domain, a pattern
  // holding the maximal code 254 in every position would pack to all-ones —
  // FlatMap64's reserved empty marker. Only then fall back.
  return !every_lane_can_saturate;
}

uint64_t ClusterUniverse::PackPattern(const std::vector<int32_t>& pattern) {
  uint64_t key = 0;
  for (size_t a = 0; a < pattern.size(); ++a) {
    uint64_t lane =
        pattern[a] == kWildcard ? 0 : static_cast<uint64_t>(pattern[a]) + 1;
    key |= lane << (8 * a);
  }
  return key;
}

Result<ClusterUniverse> ClusterUniverse::Build(const AnswerSet* s, int top_l,
                                               const Options& options) {
  QAG_CHECK(s != nullptr);
  int m = s->num_attrs();
  if (m > options.max_attrs || m > 30) {
    return Status::InvalidArgument(
        StrCat("refusing to enumerate 2^", m,
               " generalizations per element; reduce the number of "
               "group-by attributes (max ", options.max_attrs, ")"));
  }
  if (top_l < 1 || top_l > s->size()) {
    return Status::InvalidArgument(
        StrCat("L must be in [1, n=", s->size(), "], got ", top_l));
  }

  ClusterUniverse u;
  u.answer_set_ = s;
  u.top_l_ = top_l;
  u.packed_ = !options.force_unpacked && CanPack(*s);
  u.input_fingerprint_ = s->content_fingerprint();
  // Cluster generation stays serial (ids must be assigned in discovery
  // order); a pool is spun up only by the sharded coverage-scan branches.
  const int num_threads = options.num_threads > 0
                              ? options.num_threads
                              : ThreadPool::DefaultNumThreads();

  const uint32_t num_masks = 1u << m;
  std::vector<int32_t> scratch(static_cast<size_t>(m));
  u.singleton_ids_.resize(static_cast<size_t>(top_l));

  if (u.packed_) {
    // Per-mask lane masks: 0xFF in every wildcarded byte lane, so
    // "generalize element under mask" is one AND-NOT.
    std::vector<uint64_t> lane_mask(num_masks, 0);
    for (uint32_t mask = 0; mask < num_masks; ++mask) {
      uint64_t lanes = 0;
      for (int a = 0; a < m; ++a) {
        if (mask & (1u << a)) lanes |= 0xFFULL << (8 * a);
      }
      lane_mask[mask] = lanes;
    }

    u.packed_ids_.Reset(static_cast<size_t>(top_l) * num_masks);
    for (int i = 0; i < top_l; ++i) {
      const std::vector<int32_t>& attrs = s->element(i).attrs;
      uint64_t base = PackPattern(attrs);
      for (uint32_t mask = 0; mask < num_masks; ++mask) {
        uint64_t key = base & ~lane_mask[mask];
        auto [id, inserted] = u.packed_ids_.FindOrInsert(
            key, static_cast<int32_t>(u.clusters_.size()));
        if (inserted) {
          for (int a = 0; a < m; ++a) {
            scratch[static_cast<size_t>(a)] =
                (mask & (1u << a)) ? kWildcard
                                   : attrs[static_cast<size_t>(a)];
          }
          u.clusters_.emplace_back(scratch);
        }
        if (mask == 0) u.singleton_ids_[static_cast<size_t>(i)] = id;
      }
    }

    const int num_clusters = static_cast<int>(u.clusters_.size());
    u.covered_.resize(static_cast<size_t>(num_clusters));
    u.covered_sum_.assign(static_cast<size_t>(num_clusters), 0.0);
    u.top_covered_count_.assign(static_cast<size_t>(num_clusters), 0);

    if (options.naive_mapping) {
      for (int id = 0; id < num_clusters; ++id) {
        const Cluster& c = u.clusters_[static_cast<size_t>(id)];
        for (int e = 0; e < s->size(); ++e) {
          if (c.CoversElement(s->element(e).attrs)) {
            u.covered_[static_cast<size_t>(id)].push_back(e);
            u.covered_sum_[static_cast<size_t>(id)] += s->value(e);
            if (e < top_l) ++u.top_covered_count_[static_cast<size_t>(id)];
          }
        }
      }
    } else if (num_threads == 1) {
      for (int e = 0; e < s->size(); ++e) {
        uint64_t base = PackPattern(s->element(e).attrs);
        double value = s->value(e);
        for (uint32_t mask = 0; mask < num_masks; ++mask) {
          int id = u.packed_ids_.FindOr(base & ~lane_mask[mask], -1);
          if (id < 0) continue;
          u.covered_[static_cast<size_t>(id)].push_back(e);
          u.covered_sum_[static_cast<size_t>(id)] += value;
          if (e < top_l) ++u.top_covered_count_[static_cast<size_t>(id)];
        }
      }
    } else {
      // Sharded inverse scan: workers probe disjoint contiguous element
      // ranges into private buffers, merged in element order above.
      ThreadPool pool(num_threads);
      std::vector<std::vector<std::vector<int32_t>>> shard_covered(
          static_cast<size_t>(pool.num_threads()));
      pool.ParallelForShards(
          0, s->size(), [&](int shard, int64_t e_begin, int64_t e_end) {
            auto& local = shard_covered[static_cast<size_t>(shard)];
            local.resize(static_cast<size_t>(num_clusters));
            for (int64_t e = e_begin; e < e_end; ++e) {
              uint64_t base =
                  PackPattern(s->element(static_cast<int>(e)).attrs);
              for (uint32_t mask = 0; mask < num_masks; ++mask) {
                int id = u.packed_ids_.FindOr(base & ~lane_mask[mask], -1);
                if (id < 0) continue;
                local[static_cast<size_t>(id)].push_back(
                    static_cast<int32_t>(e));
              }
            }
          });
      MergeShardCoverage(*s, top_l, shard_covered, pool, &u.covered_,
                         &u.covered_sum_, &u.top_covered_count_);
    }
    return u;
  }

  // --- Fallback: vector-keyed index (m > 8 or large domains). ---
  u.ids_.reserve(static_cast<size_t>(top_l) * num_masks);
  for (int i = 0; i < top_l; ++i) {
    const std::vector<int32_t>& attrs = s->element(i).attrs;
    for (uint32_t mask = 0; mask < num_masks; ++mask) {
      for (int a = 0; a < m; ++a) {
        scratch[static_cast<size_t>(a)] =
            (mask & (1u << a)) ? kWildcard : attrs[static_cast<size_t>(a)];
      }
      auto [it, inserted] =
          u.ids_.emplace(scratch, static_cast<int>(u.clusters_.size()));
      if (inserted) u.clusters_.emplace_back(scratch);
      if (mask == 0) u.singleton_ids_[static_cast<size_t>(i)] = it->second;
    }
  }

  const int num_clusters = static_cast<int>(u.clusters_.size());
  u.covered_.resize(static_cast<size_t>(num_clusters));
  u.covered_sum_.assign(static_cast<size_t>(num_clusters), 0.0);
  u.top_covered_count_.assign(static_cast<size_t>(num_clusters), 0);

  if (options.naive_mapping) {
    // Ablation: each cluster scans every element.
    for (int id = 0; id < num_clusters; ++id) {
      const Cluster& c = u.clusters_[static_cast<size_t>(id)];
      for (int e = 0; e < s->size(); ++e) {
        if (c.CoversElement(s->element(e).attrs)) {
          u.covered_[static_cast<size_t>(id)].push_back(e);
          u.covered_sum_[static_cast<size_t>(id)] += s->value(e);
          if (e < top_l) ++u.top_covered_count_[static_cast<size_t>(id)];
        }
      }
    }
  } else if (num_threads == 1) {
    // Optimized: each element probes the hash index with its own masks.
    // A cluster covers element e iff it equals one generalization of e,
    // so every (cluster, element) pair is found exactly once.
    for (int e = 0; e < s->size(); ++e) {
      const std::vector<int32_t>& attrs = s->element(e).attrs;
      for (uint32_t mask = 0; mask < num_masks; ++mask) {
        for (int a = 0; a < m; ++a) {
          scratch[static_cast<size_t>(a)] =
              (mask & (1u << a)) ? kWildcard : attrs[static_cast<size_t>(a)];
        }
        auto it = u.ids_.find(scratch);
        if (it == u.ids_.end()) continue;
        int id = it->second;
        u.covered_[static_cast<size_t>(id)].push_back(e);
        u.covered_sum_[static_cast<size_t>(id)] += s->value(e);
        if (e < top_l) ++u.top_covered_count_[static_cast<size_t>(id)];
      }
    }
  } else {
    // Sharded inverse scan (see the packed branch); probes need a
    // per-worker scratch pattern.
    ThreadPool pool(num_threads);
    std::vector<std::vector<std::vector<int32_t>>> shard_covered(
        static_cast<size_t>(pool.num_threads()));
    pool.ParallelForShards(
        0, s->size(), [&](int shard, int64_t e_begin, int64_t e_end) {
          auto& local = shard_covered[static_cast<size_t>(shard)];
          local.resize(static_cast<size_t>(num_clusters));
          std::vector<int32_t> probe(static_cast<size_t>(m));
          for (int64_t e = e_begin; e < e_end; ++e) {
            const std::vector<int32_t>& attrs =
                s->element(static_cast<int>(e)).attrs;
            for (uint32_t mask = 0; mask < num_masks; ++mask) {
              for (int a = 0; a < m; ++a) {
                probe[static_cast<size_t>(a)] =
                    (mask & (1u << a)) ? kWildcard
                                       : attrs[static_cast<size_t>(a)];
              }
              auto it = u.ids_.find(probe);
              if (it == u.ids_.end()) continue;
              local[static_cast<size_t>(it->second)].push_back(
                  static_cast<int32_t>(e));
            }
          }
        });
    MergeShardCoverage(*s, top_l, shard_covered, pool, &u.covered_,
                       &u.covered_sum_, &u.top_covered_count_);
  }
  return u;
}

int ClusterUniverse::FindId(const Cluster& c) const {
  if (packed_) {
    return packed_ids_.FindOr(PackPattern(c.pattern()), -1);
  }
  auto it = ids_.find(c.pattern());
  return it == ids_.end() ? -1 : it->second;
}

int ClusterUniverse::LcaId(int a, int b) const {
  if (a > b) std::swap(a, b);
  uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
                 static_cast<uint32_t>(b);
  {
    std::shared_lock<std::shared_mutex> lock(*lca_mu_);
    auto it = lca_cache_.find(key);
    if (it != lca_cache_.end()) return it->second;
  }
  Cluster lca = Cluster::Lca(cluster(a), cluster(b));
  int id = FindId(lca);
  QAG_CHECK(id >= 0) << "LCA closure violated for " << cluster(a).ToString()
                     << " and " << cluster(b).ToString();
  std::unique_lock<std::shared_mutex> lock(*lca_mu_);
  lca_cache_.emplace(key, id);
  return id;
}

std::vector<int> ClusterUniverse::LevelStartIds(int level) const {
  QAG_CHECK(level >= 0 && level <= answer_set_->num_attrs());
  int m = answer_set_->num_attrs();
  uint32_t mask = 0;
  for (int a = 0; a < level; ++a) mask |= 1u << (m - 1 - a);
  std::vector<int> out;
  std::vector<char> seen(static_cast<size_t>(num_clusters()), 0);
  for (int i = 0; i < top_l_; ++i) {
    Cluster c = Cluster::Generalize(answer_set_->element(i).attrs, mask);
    int id = FindId(c);
    QAG_CHECK(id >= 0);
    if (!seen[static_cast<size_t>(id)]) {
      seen[static_cast<size_t>(id)] = 1;
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace qagview::core
