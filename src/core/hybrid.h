#ifndef QAGVIEW_CORE_HYBRID_H_
#define QAGVIEW_CORE_HYBRID_H_

#include "common/result.h"
#include "core/bottom_up.h"
#include "core/fixed_order.h"
#include "core/solution.h"

namespace qagview::core {

struct HybridOptions {
  /// Size multiplier of the Fixed-Order phase: it runs with budget c·k
  /// before Bottom-Up merges back down to k (§5.3). Must be > 1 to leave
  /// the Bottom-Up phase room to work.
  int c = 3;
  bool use_delta_judgment = true;
  /// Merge rule used in the Bottom-Up phase (objective variants).
  BottomUpOptions::MergeRule merge_rule =
      BottomUpOptions::MergeRule::kSolutionAverage;
};

/// \brief The Hybrid greedy algorithm (§5.3).
///
/// Phase 1 is Fixed-Order with the enlarged budget c·k (fast, linear in L);
/// phase 2 is the Bottom-Up merge process shrinking the c·k clusters to k
/// (quality-oriented, quadratic only in c·k). Hybrid inherits Bottom-Up's
/// incremental structure, which the precomputation layer exploits.
class Hybrid {
 public:
  static Result<Solution> Run(const ClusterUniverse& universe,
                              const Params& params,
                              const HybridOptions& options = {});
};

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_HYBRID_H_
