#ifndef QAGVIEW_CORE_SEMILATTICE_H_
#define QAGVIEW_CORE_SEMILATTICE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/flat_map.h"
#include "common/result.h"
#include "core/answer_set.h"
#include "core/cluster.h"

namespace qagview::core {

/// \brief The materialized, relevant fragment of the cluster semilattice for
/// one (answer set, L) pair, with cluster -> covered-element mappings.
///
/// This encapsulates the paper's two initialization-time optimizations
/// (§6.3 "Cluster generation and mapping to tuples"):
///
///  * Cluster generation: instead of the full product lattice
///    prod_i (D_i ∪ {*}), only clusters that cover at least one top-L
///    element are generated — exactly the 2^m generalizations of each
///    top-L element, deduplicated. This set is closed under LCA of
///    top-L-covering clusters, so every cluster any algorithm can form
///    (merges always produce LCAs of covering clusters) has an id here.
///
///  * Mapping to tuples: each of the n elements probes the generated-cluster
///    hash index with its own 2^m generalization masks ("tuples generate
///    matching expressions for their target clusters"), instead of each
///    cluster scanning all n elements. Options::naive_mapping selects the
///    per-cluster scan for the Figure-8a ablation.
///
/// All cluster ids used by algorithms/solutions index into this universe.
struct UniverseOptions {
  /// Ablation switch: per-cluster scans over all n elements.
  bool naive_mapping = false;
  /// Hard guard against 2^m explosion.
  int max_attrs = 24;
  /// Worker count for the inverse coverage scan (elements sharded across
  /// workers, per-worker buffers merged in element order, so the covered_
  /// lists and sums are bit-identical for every thread count). <= 0 uses
  /// the hardware concurrency; 1 is the exact serial path.
  int num_threads = 0;
  /// Test/ablation switch: skip the packed-uint64 index even when the
  /// schema fits it, forcing the vector-keyed fallback.
  bool force_unpacked = false;
};

class ClusterUniverse {
 public:
  using Options = UniverseOptions;

  /// Builds the universe for the top `top_l` elements of `s`. The answer
  /// set must outlive the universe.
  static Result<ClusterUniverse> Build(const AnswerSet* s, int top_l,
                                       const Options& options = Options());

  const AnswerSet& answer_set() const { return *answer_set_; }
  int top_l() const { return top_l_; }
  /// Whether the packed-uint64 index fast path is in use (see CanPack).
  bool packed_index() const { return packed_; }

  /// Content fingerprint of the answer set this universe was built from
  /// (recorded at Build time), for refresh observability and store
  /// serialization-era checks. The session's authoritative staleness test
  /// is answer_set() object identity — exact, no collisions.
  uint64_t input_fingerprint() const { return input_fingerprint_; }

  int num_clusters() const { return static_cast<int>(clusters_.size()); }
  const Cluster& cluster(int id) const {
    return clusters_[static_cast<size_t>(id)];
  }

  /// Elements of S covered by the cluster, ascending by element id (i.e.,
  /// descending by value; the top-L members form a prefix).
  const std::vector<int32_t>& covered(int id) const {
    return covered_[static_cast<size_t>(id)];
  }
  int covered_count(int id) const {
    return static_cast<int>(covered_[static_cast<size_t>(id)].size());
  }
  double covered_sum(int id) const {
    return covered_sum_[static_cast<size_t>(id)];
  }
  /// Average value of the covered elements (avg(C) in the paper).
  double Average(int id) const {
    return covered_sum(id) / covered_count(id);
  }
  /// How many of the top-L elements the cluster covers.
  int top_covered_count(int id) const {
    return top_covered_count_[static_cast<size_t>(id)];
  }

  /// Id lookup by pattern; -1 if the pattern is not in the universe.
  int FindId(const Cluster& c) const;

  /// Id of the singleton cluster of top-L element i (0 <= i < L).
  int singleton_id(int i) const {
    return singleton_ids_[static_cast<size_t>(i)];
  }

  /// Id of LCA(cluster(a), cluster(b)); always present by closure.
  /// Memoized; safe to call concurrently from pool workers (the memo is
  /// guarded by a shared mutex, and the cached value is a pure function of
  /// (a, b), so lookup order never affects results).
  int LcaId(int a, int b) const;

  /// Ids of the level-(level) generalizations of each top-L element
  /// obtained by wildcarding its trailing `level` attributes (deduplicated).
  /// Used by the Bottom-Up "start at level D-1" variant.
  std::vector<int> LevelStartIds(int level) const;

 private:
  ClusterUniverse() = default;

  /// Packed-key fast path: with m <= 8 attributes whose domains fit a byte,
  /// a pattern packs into one uint64 (code+1 per byte lane, wildcard = 0),
  /// so index probes avoid vector hashing/allocation entirely and a
  /// generalization mask applies as a single AND. Larger schemas fall back
  /// to the vector-keyed index.
  static bool CanPack(const AnswerSet& s);
  static uint64_t PackPattern(const std::vector<int32_t>& pattern);

  const AnswerSet* answer_set_ = nullptr;
  int top_l_ = 0;
  bool packed_ = false;
  uint64_t input_fingerprint_ = 0;
  std::vector<Cluster> clusters_;
  std::unordered_map<std::vector<int32_t>, int, VectorHash<int32_t>> ids_;
  FlatMap64 packed_ids_;
  std::vector<std::vector<int32_t>> covered_;
  std::vector<double> covered_sum_;
  std::vector<int> top_covered_count_;
  std::vector<int> singleton_ids_;
  // Behind a pointer so the universe stays movable (moves happen only
  // before any concurrent use).
  mutable std::unique_ptr<std::shared_mutex> lca_mu_ =
      std::make_unique<std::shared_mutex>();
  mutable std::unordered_map<uint64_t, int> lca_cache_;
};

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_SEMILATTICE_H_
