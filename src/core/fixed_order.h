#ifndef QAGVIEW_CORE_FIXED_ORDER_H_
#define QAGVIEW_CORE_FIXED_ORDER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/solution.h"

namespace qagview::core {

struct FixedOrderOptions {
  /// §6.3 delta-judgment optimization.
  bool use_delta_judgment = true;

  /// Optional pre-processing of seed items before the top-L sweep (§5.2).
  enum class Seeding {
    kNone,    // plain Fixed-Order
    kRandom,  // random-Fixed-Order: k random top-L elements first
    kKMeans,  // k-means-Fixed-Order: k-modes cluster patterns first
  };
  Seeding seeding = Seeding::kNone;
  uint64_t seed = 42;
};

/// \brief The Fixed-Order greedy algorithm (Algorithm 3).
///
/// Processes the top-L elements in descending-value order. Each element is
/// skipped if already covered; added as a singleton if the size and
/// distance constraints allow; otherwise greedily merged (LCA) into the
/// existing cluster that maximizes the resulting solution average. All
/// constraints hold after every step, so the result is always feasible.
/// Considers O(L·k) merges total versus Bottom-Up's quadratic pair scans.
class FixedOrder {
 public:
  static Result<Solution> Run(const ClusterUniverse& universe,
                              const Params& params,
                              const FixedOrderOptions& options = {});

  /// The Fixed-Order sweep with an explicit size budget, returning the raw
  /// cluster set. Used directly by Hybrid (budget = c·k) and by the
  /// precomputation layer (budget = c·k_max with D = 0 so the output is
  /// reusable across all D). `distance_d` may be 0 to disable the distance
  /// constraint.
  static Result<std::vector<int>> RunPhase(const ClusterUniverse& universe,
                                           int budget, int top_l,
                                           int distance_d,
                                           const FixedOrderOptions& options);
};

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_FIXED_ORDER_H_
