#ifndef QAGVIEW_CORE_SOLUTION_H_
#define QAGVIEW_CORE_SOLUTION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/semilattice.h"

namespace qagview::core {

/// The user-supplied constraints of Definition 4.1.
struct Params {
  /// Size constraint: at most k clusters.
  int k = 4;
  /// Coverage constraint: the top-L elements must be covered.
  int L = 8;
  /// Distance constraint: pairwise cluster distance >= D.
  int D = 2;

  std::string ToString() const;
};

/// Validates parameter ranges against an answer set (k >= 1, 1 <= L <= n,
/// 0 <= D <= m).
Status ValidateParams(const AnswerSet& s, const Params& params);

/// \brief One summarization output: the chosen clusters plus the Max-Avg
/// objective statistics over the union of their covered elements.
struct Solution {
  std::vector<int> cluster_ids;  // ids into the ClusterUniverse
  double covered_sum = 0.0;
  int covered_count = 0;
  /// avg(O): the Max-Avg objective (Definition 4.1).
  double average = 0.0;
  /// min value among covered elements (the §9 Max-Min objective); 0 when
  /// the solution covers nothing.
  double covered_min = 0.0;

  int size() const { return static_cast<int>(cluster_ids.size()); }
};

/// Builds a Solution from cluster ids, computing the covered-union stats.
Solution MakeSolution(const ClusterUniverse& universe, std::vector<int> ids);

/// Checks all four feasibility conditions of Definition 4.1:
/// size <= k, top-L coverage, pairwise distance >= D, antichain.
/// Returns OK or a status naming the violated condition.
Status CheckFeasible(const ClusterUniverse& universe,
                     const std::vector<int>& ids, const Params& params);

}  // namespace qagview::core

#endif  // QAGVIEW_CORE_SOLUTION_H_
